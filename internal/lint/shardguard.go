package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ShardGuard finds the shared mutable state that would make a sharded
// parallel simulation kernel (ROADMAP item 1) racy: package-level variables
// that are mutated somewhere in the module and touched — read or written —
// by a function reachable from the data-path call graph roots. Today the
// whole kernel runs in one goroutine, so such state is merely a determinism
// smell; the moment the engine shards into N event loops it becomes a data
// race. Flagging it now means the tree is provably ready for the split.
//
// A reference is accepted when the variable is already shard-safe:
//
//   - its type lives in sync or sync/atomic (or is a struct whose every
//     field does) — the synchronization primitive is the point;
//   - it is only ever written by init functions or package-level
//     initializers (immutable after boot, like mpeg's cosTable);
//   - the access happens while the function holds a package-level mutex
//     (the degrade registry pattern);
//   - its declaration carries a `//scout:confined <why>` comment, the
//     documented claim that the state is confined to one shard or otherwise
//     safe. The reason is mandatory, mirroring the allowlist's justifying
//     comments.
var ShardGuard = &Analyzer{
	Name:       "shardguard",
	Doc:        "no unsynchronized package-level mutable state reachable from the data path",
	NeedsTypes: true,
	Run:        runShardGuard,
}

func runShardGuard(pass *Pass) {
	g := pass.Pkg.Mod.Graph()
	sh := shardFacts(pass.Pkg.Mod)
	for _, n := range g.NodesIn(pass.Pkg) {
		if !n.Reachable() {
			continue
		}
		reported := map[*types.Var]bool{}
		lockWindows := collectLockWindows(pass.Pkg.Info, n)
		n.inspectOwn(func(x ast.Node) bool {
			id, ok := x.(*ast.Ident)
			if !ok {
				return true
			}
			v, ok := pass.Pkg.Info.Uses[id].(*types.Var)
			if !ok || reported[v] || !sh.mutableGlobal(v) {
				return true
			}
			if lockWindows.covers(id.Pos()) {
				return true
			}
			reported[v] = true
			pass.ReportfChain(id.Pos(), g.Chain(n),
				"package-level mutable %s.%s reached from the data path without synchronization; make it shard-local, guard it with a lock, or declare //scout:confined <why>",
				v.Pkg().Name(), v.Name())
			return true
		})
	}
}

// shardModFacts is the module-wide shardguard state: which package-level
// variables are mutated outside boot, and which are annotated as confined.
type shardModFacts struct {
	mutated  map[*types.Var]bool
	confined map[*types.Var]bool
}

var shardFactsCache = map[*Module]*shardModFacts{}

func shardFacts(mod *Module) *shardModFacts {
	if f, ok := shardFactsCache[mod]; ok {
		return f
	}
	f := &shardModFacts{mutated: map[*types.Var]bool{}, confined: map[*types.Var]bool{}}
	for _, pkg := range mod.Pkgs {
		if pkg.Info == nil {
			continue
		}
		scope := pkg.Types.Scope()
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if d.Body == nil || d.Name.Name == "init" {
						continue
					}
					f.collectWrites(pkg, scope, d.Body)
				case *ast.GenDecl:
					f.collectConfined(pkg, d)
				}
			}
		}
	}
	shardFactsCache[mod] = f
	return f
}

// collectWrites records package-level variables assigned (or inc/dec'd, or
// written through an index/selector/star expression) anywhere in body.
// Writes inside init functions and package-level initializers never reach
// here, so a variable only they touch stays "immutable after boot".
func (f *shardModFacts) collectWrites(pkg *Package, scope *types.Scope, body ast.Node) {
	note := func(e ast.Expr) {
		if v := rootGlobal(pkg.Info, scope, e); v != nil {
			f.mutated[v] = true
		}
	}
	ast.Inspect(body, func(x ast.Node) bool {
		switch st := x.(type) {
		case *ast.AssignStmt:
			if st.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range st.Lhs {
				note(lhs)
			}
		case *ast.IncDecStmt:
			note(st.X)
		case *ast.UnaryExpr:
			if st.Op == token.AND {
				note(st.X) // address taken: assume it escapes to a writer
			}
		}
		return true
	})
}

// rootGlobal peels index/selector/star layers off an lvalue and reports the
// package-level variable at its root, if any.
func rootGlobal(info *types.Info, scope *types.Scope, e ast.Expr) *types.Var {
	for {
		switch t := ast.Unparen(e).(type) {
		case *ast.IndexExpr:
			e = t.X
		case *ast.SelectorExpr:
			e = t.X
		case *ast.StarExpr:
			e = t.X
		case *ast.Ident:
			v, ok := info.Uses[t].(*types.Var)
			if ok && v.Parent() == scope {
				return v
			}
			return nil
		default:
			return nil
		}
	}
}

// collectConfined records `//scout:confined <why>` annotations on var
// declarations; a bare marker with no reason is ignored, matching the
// allowlist's "no undocumented decisions" rule.
func (f *shardModFacts) collectConfined(pkg *Package, d *ast.GenDecl) {
	if d.Tok != token.VAR {
		return
	}
	hasMarker := func(cg *ast.CommentGroup) bool {
		if cg == nil {
			return false
		}
		for _, c := range cg.List {
			idx := strings.Index(c.Text, "scout:confined")
			if idx >= 0 && strings.TrimSpace(c.Text[idx+len("scout:confined"):]) != "" {
				return true
			}
		}
		return false
	}
	declMarked := hasMarker(d.Doc)
	for _, spec := range d.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		if !declMarked && !hasMarker(vs.Doc) && !hasMarker(vs.Comment) {
			continue
		}
		for _, name := range vs.Names {
			if v, ok := pkg.Info.Defs[name].(*types.Var); ok {
				f.confined[v] = true
			}
		}
	}
}

// mutableGlobal reports whether v is a package-level variable that the
// parallel kernel would race on: mutated after boot, not a synchronization
// primitive, and not annotated as confined.
func (f *shardModFacts) mutableGlobal(v *types.Var) bool {
	if v.Parent() == nil || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return false
	}
	if !f.mutated[v] || f.confined[v] {
		return false
	}
	return !shardSafeType(v.Type())
}

// shardSafeType accepts types that are themselves synchronization: anything
// from sync or sync/atomic, and structs composed entirely of such fields
// (msg's atomic stats block).
func shardSafeType(t types.Type) bool {
	if named, ok := t.(*types.Named); ok {
		if pkg := named.Obj().Pkg(); pkg != nil {
			if p := pkg.Path(); p == "sync" || p == "sync/atomic" {
				return true
			}
		}
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok || st.NumFields() == 0 {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if !shardSafeType(st.Field(i).Type()) {
			return false
		}
	}
	return true
}

// lockWindowSet captures where in a body a mutex is held, so lock-guarded
// global accesses are accepted.
type lockWindowSet struct {
	windows [][2]token.Pos
}

func (l lockWindowSet) covers(p token.Pos) bool {
	for _, w := range l.windows {
		if p > w[0] && (w[1] == token.NoPos || p < w[1]) {
			return true
		}
	}
	return false
}

// collectLockWindows records, per mutex receiver expression, the span from
// each Lock() to the next matching non-deferred Unlock() (or the end of the
// body when the unlock is deferred). The matching is syntactic — the same
// approximation locksafe uses — which is exactly right for the flat
// lock/defer-unlock shapes this module allows.
func collectLockWindows(info *types.Info, n *GraphNode) lockWindowSet {
	type open struct {
		recv string
		pos  token.Pos
	}
	var opens []open
	var set lockWindowSet
	deferred := map[*ast.CallExpr]bool{}
	n.inspectOwn(func(x ast.Node) bool {
		if d, ok := x.(*ast.DeferStmt); ok {
			deferred[d.Call] = true
		}
		return true
	})
	n.inspectOwn(func(x ast.Node) bool {
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		recv, method, ok := mutexMethod(info, call)
		if !ok {
			return true
		}
		switch method {
		case "Lock", "RLock":
			opens = append(opens, open{recv: recv, pos: call.End()})
		case "Unlock", "RUnlock":
			if deferred[call] {
				return true // held to the end of the body
			}
			for i := len(opens) - 1; i >= 0; i-- {
				if opens[i].recv == recv {
					set.windows = append(set.windows, [2]token.Pos{opens[i].pos, call.Pos()})
					opens = append(opens[:i], opens[i+1:]...)
					break
				}
			}
		}
		return true
	})
	for _, o := range opens {
		set.windows = append(set.windows, [2]token.Pos{o.pos, token.NoPos})
	}
	return set
}
