package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// LockSafe flags calls to function-typed values (callbacks: struct fields
// like core.Stage.Establish or fbuf release hooks, and function parameters)
// made while a sync.Mutex/RWMutex is held in the same function body. Calling
// user code under a pool or scheduler lock is a deadlock and reentrancy
// hazard: the callback may call straight back into the locked object — the
// fbuf free path (msg.Releaser) re-enters the pool by design, so a pool that
// invoked callbacks under its own mutex would self-deadlock.
var LockSafe = &Analyzer{
	Name:         "locksafe",
	Doc:          "no callback (function-typed field/parameter) invocations while a mutex is held",
	InternalOnly: true,
	NeedsTypes:   true,
	Run:          runLockSafe,
}

type lockEvent struct {
	recv string // rendered receiver expression, e.g. "p.mu"
	kind string // "Lock" or "RLock"
	pos  token.Pos
	line int
}

type unlockEvent struct {
	recv     string
	kind     string // "Unlock" or "RUnlock"
	pos      token.Pos
	deferred bool
}

type cbCall struct {
	desc string
	pos  token.Pos
}

func runLockSafe(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkLockBody(pass, fn.Body)
		}
	}
}

func checkLockBody(pass *Pass, body *ast.BlockStmt) {
	info := pass.Pkg.Info
	var locks []lockEvent
	var unlocks []unlockEvent
	var calls []cbCall

	deferredCalls := map[*ast.CallExpr]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok {
			deferredCalls[d.Call] = true
		}
		return true
	})

	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if recv, method, ok := mutexMethod(info, call); ok {
			switch method {
			case "Lock", "RLock":
				locks = append(locks, lockEvent{recv: recv, kind: method, pos: call.Pos(),
					line: pass.Pkg.Mod.Fset.Position(call.Pos()).Line})
			case "Unlock", "RUnlock":
				unlocks = append(unlocks, unlockEvent{recv: recv, kind: method, pos: call.Pos(),
					deferred: deferredCalls[call]})
			}
			return true
		}
		if desc, ok := funcValueCallee(info, call); ok {
			calls = append(calls, cbCall{desc: desc, pos: call.Pos()})
		}
		return true
	})
	if len(locks) == 0 || len(calls) == 0 {
		return
	}
	sort.Slice(calls, func(i, j int) bool { return calls[i].pos < calls[j].pos })

	for _, c := range calls {
		for _, l := range locks {
			if l.pos >= c.pos {
				continue
			}
			released := false
			for _, u := range unlocks {
				if u.deferred || u.recv != l.recv || u.kind != matchingUnlock(l.kind) {
					continue
				}
				if u.pos > l.pos && u.pos < c.pos {
					released = true
					break
				}
			}
			if !released {
				pass.Reportf(c.pos, "callback %s invoked while %s is held (%s at line %d); release the mutex before calling user code", c.desc, l.recv, l.kind, l.line)
				break // one report per call site is enough
			}
		}
	}
}

// mutexMethod reports whether call is recv.Lock/Unlock/RLock/RUnlock on a
// sync.Mutex or sync.RWMutex, returning the rendered receiver.
func mutexMethod(info *types.Info, call *ast.CallExpr) (recv, method string, ok bool) {
	sel, okSel := call.Fun.(*ast.SelectorExpr)
	if !okSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", "", false
	}
	tv, okType := info.Types[sel.X]
	if !okType {
		return "", "", false
	}
	t := tv.Type
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return "", "", false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return "", "", false
	}
	if obj.Name() != "Mutex" && obj.Name() != "RWMutex" {
		return "", "", false
	}
	return types.ExprString(sel.X), sel.Sel.Name, true
}

func matchingUnlock(lockKind string) string {
	if lockKind == "RLock" {
		return "RUnlock"
	}
	return "Unlock"
}

// funcValueCallee reports whether call invokes a function-typed *value* — a
// struct field, parameter, or variable holding a func — as opposed to a
// declared function or method.
func funcValueCallee(info *types.Info, call *ast.CallExpr) (string, bool) {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		obj, ok := info.Uses[fun]
		if !ok {
			return "", false
		}
		v, isVar := obj.(*types.Var)
		if !isVar {
			return "", false
		}
		if _, isSig := v.Type().Underlying().(*types.Signature); !isSig {
			return "", false
		}
		return fun.Name, true
	case *ast.SelectorExpr:
		selInfo, ok := info.Selections[fun]
		if !ok || selInfo.Kind() != types.FieldVal {
			return "", false
		}
		if _, isSig := selInfo.Type().Underlying().(*types.Signature); !isSig {
			return "", false
		}
		return types.ExprString(fun), true
	}
	return "", false
}
