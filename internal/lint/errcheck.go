package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrCheck flags error results that are silently discarded in internal/
// production code: a call used as a bare statement whose (last) result is an
// error. On a path, a dropped error is a dropped invariant — admission
// control, fbuf limits, and demux failures all report through error returns,
// and ignoring one turns a controlled degradation into silent corruption.
// Explicit discards (`_ = f()`) remain legal: they are visible in review and
// greppable.
var ErrCheck = &Analyzer{
	Name:         "errcheck-lite",
	Doc:          "no silently discarded error results in internal/ non-test code",
	InternalOnly: true,
	NeedsTypes:   true,
	Run:          runErrCheck,
}

// errCheckExempt lists callees whose errors are conventionally meaningless:
// best-effort terminal output, and the bytes/strings builders that are
// documented never to fail.
var errCheckExempt = map[string]bool{
	"fmt.Print":   true,
	"fmt.Printf":  true,
	"fmt.Println": true,
}

func errCheckExemptRecv(full string) bool {
	return strings.HasPrefix(full, "(*bytes.Buffer).") ||
		strings.HasPrefix(full, "(*strings.Builder).")
}

func runErrCheck(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := stmt.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !returnsError(info, call) {
				return true
			}
			name := calleeName(info, call)
			if errCheckExempt[name] || errCheckExemptRecv(name) {
				return true
			}
			if name == "" {
				name = "call"
			}
			pass.Reportf(call.Pos(), "%s returns an error that is silently discarded; handle it or assign it explicitly (_ = ...)", name)
			return true
		})
	}
}

// returnsError reports whether the call's result is an error or a tuple
// whose last element is an error.
func returnsError(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	var last types.Type
	switch t := tv.Type.(type) {
	case *types.Tuple:
		if t.Len() == 0 {
			return false
		}
		last = t.At(t.Len() - 1).Type()
	default:
		last = t
	}
	return isErrorType(last)
}

var errorType = types.Universe.Lookup("error").Type()

// isErrorType matches results declared exactly as `error` (the convention
// this repo follows everywhere); concrete error implementations returned as
// themselves are rare and deliberate.
func isErrorType(t types.Type) bool {
	return types.Identical(t, errorType)
}

// calleeName renders the called function for messages and the exemption
// table: "fmt.Println", "(*bytes.Buffer).WriteString", or a bare name.
func calleeName(info *types.Info, call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if obj, ok := info.Uses[fun]; ok {
			if fn, ok := obj.(*types.Func); ok {
				return fn.FullName()
			}
		}
		return fun.Name
	case *ast.SelectorExpr:
		if obj, ok := info.Uses[fun.Sel]; ok {
			if fn, ok := obj.(*types.Func); ok {
				return fn.FullName()
			}
		}
		return types.ExprString(fun)
	}
	return ""
}
