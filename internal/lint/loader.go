package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// Module is a loaded Go module: every package parsed, and type-checked in
// dependency order with a stdlib importer for out-of-module imports.
type Module struct {
	Root string // absolute filesystem root (dir containing go.mod)
	Path string // module path from go.mod
	Fset *token.FileSet
	Pkgs []*Package

	byPath map[string]*Package
	graph  *CallGraph // lazily built data-path call graph (see callgraph.go)
}

// Package is one package in the module.
type Package struct {
	Mod  *Module
	Path string // import path
	Dir  string
	// Files are the non-test files; they carry type info when the check
	// succeeded. TestFiles are *_test.go files, parsed but not checked
	// (external test packages would need a second type-check universe;
	// syntactic analyzers cover them).
	Files     []*ast.File
	TestFiles []*ast.File
	Types     *types.Package
	Info      *types.Info
	TypeErrs  []error

	checked bool
}

// Internal reports whether the package lives under <module>/internal/.
func (p *Package) Internal() bool {
	return strings.HasPrefix(p.Path, p.Mod.Path+"/internal/")
}

var moduleRe = regexp.MustCompile(`(?m)^module\s+(\S+)`)

// FindModuleRoot walks up from dir to the nearest directory with a go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// Load parses and type-checks every package under root (skipping testdata,
// vendor, and hidden directories).
func Load(root string) (*Module, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modBytes, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("lint: cannot read go.mod: %w", err)
	}
	m := moduleRe.FindSubmatch(modBytes)
	if m == nil {
		return nil, fmt.Errorf("lint: no module directive in %s/go.mod", root)
	}
	mod := &Module{
		Root:   root,
		Path:   string(m[1]),
		Fset:   token.NewFileSet(),
		byPath: make(map[string]*Package),
	}

	var dirs []string
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		dirs = append(dirs, path)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)

	for _, dir := range dirs {
		pkg, err := mod.parseDir(dir)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			mod.Pkgs = append(mod.Pkgs, pkg)
			mod.byPath[pkg.Path] = pkg
		}
	}

	imp := &modImporter{mod: mod, std: newStdImporter(mod.Fset)}
	for _, pkg := range mod.Pkgs {
		imp.check(pkg)
	}
	return mod, nil
}

func (m *Module) parseDir(dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(m.Root, dir)
	if err != nil {
		return nil, err
	}
	path := m.Path
	if rel != "." {
		path = m.Path + "/" + filepath.ToSlash(rel)
	}
	pkg := &Package{Mod: m, Path: path, Dir: dir}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		f, err := parser.ParseFile(m.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		if strings.HasSuffix(name, "_test.go") {
			pkg.TestFiles = append(pkg.TestFiles, f)
		} else {
			pkg.Files = append(pkg.Files, f)
		}
	}
	if len(pkg.Files) == 0 && len(pkg.TestFiles) == 0 {
		return nil, nil
	}
	return pkg, nil
}

// stdImporter resolves out-of-module (standard library) imports: the gc
// export-data importer first, falling back to type-checking from source.
type stdImporter struct {
	gc    types.Importer
	src   types.Importer
	cache map[string]*types.Package
}

func newStdImporter(fset *token.FileSet) *stdImporter {
	return &stdImporter{
		gc:    importer.ForCompiler(fset, "gc", nil),
		src:   importer.ForCompiler(fset, "source", nil),
		cache: make(map[string]*types.Package),
	}
}

func (s *stdImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := s.cache[path]; ok {
		return pkg, nil
	}
	pkg, err := s.gc.Import(path)
	if err != nil {
		pkg, err = s.src.Import(path)
	}
	if err != nil {
		return nil, err
	}
	s.cache[path] = pkg
	return pkg, nil
}

// modImporter resolves imports during the module type-check: module-internal
// packages are checked on demand (imports form a DAG, so the recursion
// terminates); everything else goes to the stdlib importer.
type modImporter struct {
	mod      *Module
	std      *stdImporter
	checking []string
}

func (mi *modImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := mi.mod.byPath[path]; ok {
		for _, active := range mi.checking {
			if active == path {
				return nil, fmt.Errorf("import cycle through %s", path)
			}
		}
		mi.check(pkg)
		if pkg.Types == nil {
			return nil, fmt.Errorf("package %s failed to type-check", path)
		}
		return pkg.Types, nil
	}
	return mi.std.Import(path)
}

func (mi *modImporter) check(pkg *Package) {
	if pkg.checked {
		return
	}
	pkg.checked = true
	if len(pkg.Files) == 0 {
		return // test-only package; syntactic analyzers still see it
	}
	mi.checking = append(mi.checking, pkg.Path)
	defer func() { mi.checking = mi.checking[:len(mi.checking)-1] }()

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{
		Importer: mi,
		Error:    func(err error) { pkg.TypeErrs = append(pkg.TypeErrs, err) },
	}
	tpkg, err := conf.Check(pkg.Path, mi.mod.Fset, pkg.Files, info)
	if err != nil && tpkg == nil {
		return
	}
	pkg.Types = tpkg
	pkg.Info = info
}
