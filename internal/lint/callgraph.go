package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"io"
	"path"
	"sort"
	"strings"
)

// This file builds the module's data-path call graph: the whole-program
// facility the interprocedural analyzers (detlint, shardguard, goguard,
// nopanic-deep, locksafe-deep, errcheck-deep) share. The paper's argument
// (§3.2) is that invariants fixed at path-creation time make aggressive path
// optimizations sound; the per-function analyzers check those invariants one
// body at a time, but the invariants themselves are properties of *call
// chains* rooted at the delivery entry points. The graph makes those chains
// explicit, so "no wall-clock read on the data path" means no wall-clock
// read in any function the data path can reach — and the sharded parallel
// kernel (ROADMAP item 1) can rely on it.
//
// Nodes are every declared function/method and every function literal in the
// module's non-test files. Edges are:
//
//   - static: the callee is a declared function or a method on a concrete
//     type, resolved through go/types;
//   - interface: the callee is an interface method; conservative resolution
//     adds an edge to the matching method of every module type that
//     implements the interface;
//   - value: the callee is a function-typed value. Struct-field callees
//     (i..Deliver, q.NotEmpty, t.body) resolve to every function value the
//     module assigns to a same-named field with an identical signature;
//     parameter callees resolve through the call sites of the enclosing
//     function; local and package-level variables resolve through their
//     assignments.
//
// The resolution is deliberately conservative in the over-approximate
// direction for interfaces and callback fields (every implementation /
// assignment is an edge). Function values laundered through collections are
// the one under-approximation — compensated by the root set, which already
// includes every function value installed into a known data-path callback
// field.

// GraphEdgeKind classifies how a call edge was resolved.
type GraphEdgeKind uint8

const (
	// EdgeStatic: direct call of a declared function or concrete method.
	EdgeStatic GraphEdgeKind = iota
	// EdgeIface: interface method call, resolved to an implementing method.
	EdgeIface
	// EdgeValue: call of a function-typed value (field, parameter, variable
	// or literal), resolved through assignments and call sites.
	EdgeValue
)

func (k GraphEdgeKind) String() string {
	switch k {
	case EdgeStatic:
		return "static"
	case EdgeIface:
		return "iface"
	default:
		return "value"
	}
}

// GraphEdge is one resolved call: To is the callee, Pos the call site.
type GraphEdge struct {
	To   *GraphNode
	Pos  token.Pos
	Kind GraphEdgeKind
}

// GraphNode is one function in the call graph: a declared function/method
// (Fn, Decl set) or a function literal (Lit set; Decl is the enclosing
// declaration, nil for package-level initializer literals).
type GraphNode struct {
	Name  string // stable rendering: "core.(*Path).Inject", "eth.createStage$1"
	Pkg   *Package
	Fn    *types.Func   // nil for literals
	Lit   *ast.FuncLit  // nil for declared functions
	Decl  *ast.FuncDecl // enclosing declaration (self for declared functions)
	Body  *ast.BlockStmt
	Edges []GraphEdge

	// RootWhy is non-empty when the node is a data-path root; it records
	// which root rule matched ("name", "field Deliver", "arg to Interrupt").
	RootWhy string

	reachable bool
	parent    *GraphNode // BFS predecessor on the shortest chain from a root
	parentPos token.Pos  // call site in parent that reaches this node

	cbDirect bool  // body invokes a function-typed value directly
	cbState  uint8 // callback-summary DFS state: 0 new, 1 in progress, 2 done
	cbResult bool
	cbVia    *GraphNode // example callee leading to a callback invocation
	cbPos    token.Pos

	pendingCalls []pendingCall // function-value calls awaiting resolution
	rootArgs     []rootArg     // function values passed to spawn points
}

type pendingCall struct {
	fun ast.Expr
	pos token.Pos
}

type rootArg struct {
	expr ast.Expr
	why  string
}

// Reachable reports whether the node is reachable from a data-path root.
func (n *GraphNode) Reachable() bool { return n.reachable }

// CallGraph is the module-wide graph. Build it once per Module via
// Module.Graph; analyzers share the instance.
type CallGraph struct {
	Mod   *Module
	Nodes []*GraphNode // deterministic (position) order

	byFn  map[*types.Func]*GraphNode
	byLit map[*ast.FuncLit]*GraphNode

	// fieldAssigns maps a struct-field name to every function value the
	// module assigns to a field of that name (composite literals and
	// assignment statements).
	fieldAssigns map[string][]pendingValue
	// callSites maps a declared function to the argument lists of its static
	// call sites, for parameter resolution.
	callSites map[*types.Func][]graphCallSite
	// namedTypes are the module's named types, for interface resolution.
	namedTypes []types.Type

	resolveMemo map[ast.Expr][]*GraphNode
}

type pendingValue struct {
	expr  ast.Expr
	owner *GraphNode // enclosing function, nil at package level
	pkg   *Package
}

type graphCallSite struct {
	args  []ast.Expr
	owner *GraphNode
	pkg   *Package
}

// dataPathRootNames: a declared internal/ function with one of these names
// (or the Deliver prefix) is a delivery entry point by convention.
var dataPathRootNames = map[string]bool{"Inject": true}

// dataPathFields: a function value assigned to a struct field with one of
// these names runs on the data path — delivery chains, queue and scheduler
// hooks, overload and receive callbacks.
var dataPathFields = map[string]bool{
	"Deliver": true, "EarlyDiscard": true, "Wakeup": true, "OnOverload": true,
	"NotEmpty": true, "Drained": true, "OnEnqueue": true, "OnDequeue": true,
	"OnDrop": true, "OnExec": true, "OnReceive": true, "OnReceiveBurst": true,
	"body": true,
}

// dataPathArgFuncs: a function value passed as argument N to a callee with
// one of these names becomes a data-path root — interrupt handlers, thread
// bodies, and deliver functions handed to constructors. Matching is by bare
// callee name; the names are unique in this module (same convention as
// flowguard's mutator table).
var dataPathArgFuncs = map[string]int{
	"Interrupt":   1,
	"NewThread":   2,
	"NewNetIface": 0,
	// Xport.Post continuations run on the destination shard's engine at a
	// window barrier — data path on the far side of a cross-shard boundary.
	"Post": 1,
}

// Graph returns the module's data-path call graph, building it on first use.
func (m *Module) Graph() *CallGraph {
	if m.graph == nil {
		m.graph = buildCallGraph(m)
	}
	return m.graph
}

func buildCallGraph(mod *Module) *CallGraph {
	g := &CallGraph{
		Mod:          mod,
		byFn:         make(map[*types.Func]*GraphNode),
		byLit:        make(map[*ast.FuncLit]*GraphNode),
		fieldAssigns: make(map[string][]pendingValue),
		callSites:    make(map[*types.Func][]graphCallSite),
		resolveMemo:  make(map[ast.Expr][]*GraphNode),
	}
	for _, pkg := range mod.Pkgs {
		if pkg.Info == nil {
			continue // analyzers that need the graph also need types
		}
		for _, f := range pkg.Files {
			g.addFile(pkg, f)
		}
	}
	g.collectNamedTypes()
	for _, n := range g.Nodes {
		g.scanNode(n)
	}
	for _, n := range g.Nodes {
		g.resolveValueCalls(n)
	}
	g.markRoots()
	g.propagate()
	return g
}

// addFile creates nodes for every function declaration and literal in f.
func (g *CallGraph) addFile(pkg *Package, f *ast.File) {
	base := path.Base(pkg.Path)
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if d.Body == nil {
				continue
			}
			n := &GraphNode{
				Name: base + "." + declName(d),
				Pkg:  pkg, Fn: declObj(pkg, d), Decl: d, Body: d.Body,
			}
			g.Nodes = append(g.Nodes, n)
			if n.Fn != nil {
				g.byFn[n.Fn] = n
			}
			g.addLits(pkg, n.Name, d, d.Body)
		case *ast.GenDecl:
			// Function literals in package-level initializers (var x = ...,
			// sync.Pool{New: ...}) still get nodes; they run at boot or via
			// the field they are assigned to.
			g.addLits(pkg, base+".init", nil, d)
		}
	}
}

// addLits creates nodes for the function literals under root (skipping
// literals nested in other literals, which recurse with their own prefix).
func (g *CallGraph) addLits(pkg *Package, prefix string, decl *ast.FuncDecl, root ast.Node) {
	i := 0
	ast.Inspect(root, func(n ast.Node) bool {
		lit, ok := n.(*ast.FuncLit)
		if !ok {
			return true
		}
		i++
		node := &GraphNode{
			Name: fmt.Sprintf("%s$%d", prefix, i),
			Pkg:  pkg, Lit: lit, Decl: decl, Body: lit.Body,
		}
		g.Nodes = append(g.Nodes, node)
		g.byLit[lit] = node
		g.addLits(pkg, node.Name, decl, lit.Body)
		return false
	})
}

func declName(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return d.Name.Name
	}
	recv := types.ExprString(d.Recv.List[0].Type)
	return "(" + recv + ")." + d.Name.Name
}

func declObj(pkg *Package, d *ast.FuncDecl) *types.Func {
	if obj, ok := pkg.Info.Defs[d.Name]; ok {
		if fn, ok := obj.(*types.Func); ok {
			return fn
		}
	}
	return nil
}

func (g *CallGraph) collectNamedTypes() {
	for _, pkg := range g.Mod.Pkgs {
		if pkg.Types == nil {
			continue
		}
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() { // Names is sorted
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			g.namedTypes = append(g.namedTypes, tn.Type())
		}
	}
}

// inspectOwn walks the node's own body, not descending into nested function
// literals (each literal is its own node).
func (n *GraphNode) inspectOwn(f func(ast.Node) bool) {
	if n.Body == nil {
		return
	}
	ast.Inspect(n.Body, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok {
			return false
		}
		return f(x)
	})
}

// scanNode records the node's static and interface edges, its call sites
// (for parameter resolution), its field assignments, and whether it invokes
// a function-typed value directly.
func (g *CallGraph) scanNode(n *GraphNode) {
	n.inspectOwn(func(x ast.Node) bool {
		switch st := x.(type) {
		case *ast.AssignStmt:
			for i, lhs := range st.Lhs {
				if i >= len(st.Rhs) {
					break // x, y = f() — no function value to record
				}
				g.recordFieldAssign(n, lhs, st.Rhs[i])
			}
		case *ast.CompositeLit:
			for _, el := range st.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					g.recordFieldAssign(n, kv.Key, kv.Value)
				}
			}
		case *ast.CallExpr:
			g.scanCall(n, st)
		}
		return true
	})
}

// scanPackageDecls records field assignments made in package-level variable
// initializers, which no function body owns.
func (g *CallGraph) scanPackageDecls(pkg *Package) {
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			ast.Inspect(gd, func(x ast.Node) bool {
				if _, ok := x.(*ast.FuncLit); ok {
					return false
				}
				if cl, ok := x.(*ast.CompositeLit); ok {
					for _, el := range cl.Elts {
						if kv, ok := el.(*ast.KeyValueExpr); ok {
							g.recordFieldAssignPkg(pkg, kv.Key, kv.Value)
						}
					}
				}
				return true
			})
		}
	}
}

func (g *CallGraph) recordFieldAssign(n *GraphNode, lhs, rhs ast.Expr) {
	name, ok := fieldName(n.Pkg.Info, lhs)
	if !ok || !isFuncValued(n.Pkg.Info, rhs) {
		return
	}
	g.fieldAssigns[name] = append(g.fieldAssigns[name], pendingValue{expr: rhs, owner: n, pkg: n.Pkg})
}

func (g *CallGraph) recordFieldAssignPkg(pkg *Package, lhs, rhs ast.Expr) {
	name, ok := fieldName(pkg.Info, lhs)
	if !ok || !isFuncValued(pkg.Info, rhs) {
		return
	}
	g.fieldAssigns[name] = append(g.fieldAssigns[name], pendingValue{expr: rhs, pkg: pkg})
}

// fieldName reports the struct-field name lhs assigns to: a selector
// resolving to a field, or a composite-literal key identifier.
func fieldName(info *types.Info, lhs ast.Expr) (string, bool) {
	switch e := lhs.(type) {
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			return e.Sel.Name, true
		}
	case *ast.Ident:
		if obj, ok := info.Uses[e]; ok {
			if v, ok := obj.(*types.Var); ok && v.IsField() {
				return e.Name, true
			}
		}
	}
	return "", false
}

func isFuncValued(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, isSig := tv.Type.Underlying().(*types.Signature)
	return isSig
}

func (g *CallGraph) scanCall(n *GraphNode, call *ast.CallExpr) {
	info := n.Pkg.Info
	fun := ast.Unparen(call.Fun)

	// Direct literal invocation.
	if lit, ok := fun.(*ast.FuncLit); ok {
		if target := g.byLit[lit]; target != nil {
			n.Edges = append(n.Edges, GraphEdge{To: target, Pos: call.Pos(), Kind: EdgeStatic})
		}
		return
	}

	if obj := calleeFunc(info, fun); obj != nil {
		// Interface method call: conservative edges to every implementation.
		if sel, ok := fun.(*ast.SelectorExpr); ok {
			if s, ok := info.Selections[sel]; ok && s.Kind() == types.MethodVal {
				if _, isIface := s.Recv().Underlying().(*types.Interface); isIface {
					g.addIfaceEdges(n, call, s.Recv().Underlying().(*types.Interface), sel.Sel.Name)
					g.recordRootArgs(n, call, obj.Name())
					return
				}
			}
		}
		// Static call to a declared function or concrete method.
		if target := g.byFn[obj]; target != nil {
			n.Edges = append(n.Edges, GraphEdge{To: target, Pos: call.Pos(), Kind: EdgeStatic})
		}
		g.callSites[obj] = append(g.callSites[obj], graphCallSite{args: call.Args, owner: n, pkg: n.Pkg})
		g.recordRootArgs(n, call, obj.Name())
		return
	}

	// Conversions (T(x)) and builtin calls resolve to nothing.
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		return
	}
	if id, ok := fun.(*ast.Ident); ok {
		if obj, ok := info.Uses[id]; ok {
			if _, isBuiltin := obj.(*types.Builtin); isBuiltin {
				return
			}
		}
	}

	// Function-value call: defer resolution until all assignments and call
	// sites are collected.
	if isFuncValued(info, fun) {
		n.cbDirect = true
		n.pendingCalls = append(n.pendingCalls, pendingCall{fun: fun, pos: call.Pos()})
	}
}

// recordRootArgs roots function values passed to the data-path spawn points
// (Interrupt handlers, thread bodies, deliver constructors).
func (g *CallGraph) recordRootArgs(n *GraphNode, call *ast.CallExpr, calleeName string) {
	idx, tracked := dataPathArgFuncs[calleeName]
	if !tracked || idx >= len(call.Args) {
		return
	}
	arg := call.Args[idx]
	if !isFuncValued(n.Pkg.Info, arg) {
		return
	}
	n.rootArgs = append(n.rootArgs, rootArg{expr: arg, why: "arg to " + calleeName})
}

func (g *CallGraph) addIfaceEdges(n *GraphNode, call *ast.CallExpr, iface *types.Interface, method string) {
	for _, t := range g.namedTypes {
		var impl types.Type
		switch {
		case types.Implements(t, iface):
			impl = t
		case types.Implements(types.NewPointer(t), iface):
			impl = types.NewPointer(t)
		default:
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(impl, true, n.Pkg.Types, method)
		fn, ok := obj.(*types.Func)
		if !ok {
			continue
		}
		if target := g.byFn[fn]; target != nil {
			n.Edges = append(n.Edges, GraphEdge{To: target, Pos: call.Pos(), Kind: EdgeIface})
		}
	}
}

// calleeFunc resolves fun to the *types.Func it statically names, or nil.
func calleeFunc(info *types.Info, fun ast.Expr) *types.Func {
	switch e := fun.(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[e].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[e.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// resolveValueCalls turns the node's pending function-value calls into value
// edges, and resolves its root-argument expressions.
func (g *CallGraph) resolveValueCalls(n *GraphNode) {
	for _, pc := range n.pendingCalls {
		for _, target := range g.resolveFuncValue(pc.fun, n, 4) {
			n.Edges = append(n.Edges, GraphEdge{To: target, Pos: pc.pos, Kind: EdgeValue})
		}
	}
	for _, ra := range n.rootArgs {
		for _, target := range g.resolveFuncValue(ra.expr, n, 4) {
			if target.RootWhy == "" {
				target.RootWhy = ra.why
			}
		}
	}
}

// resolveFuncValue resolves a function-valued expression to the graph nodes
// it may denote: literals to their own node, named functions and method
// values to the declared node, struct fields to every same-named same-signed
// assignment, parameters through the enclosing function's call sites, and
// variables through their assignments. depth bounds the recursion.
func (g *CallGraph) resolveFuncValue(expr ast.Expr, owner *GraphNode, depth int) []*GraphNode {
	if depth <= 0 || expr == nil {
		return nil
	}
	expr = ast.Unparen(expr)
	if memo, ok := g.resolveMemo[expr]; ok {
		return memo
	}
	g.resolveMemo[expr] = nil // cycle guard

	var pkg *Package
	if owner != nil {
		pkg = owner.Pkg
	} else {
		pkg = g.pkgOf(expr)
	}
	if pkg == nil || pkg.Info == nil {
		return nil
	}
	info := pkg.Info

	var out []*GraphNode
	switch e := expr.(type) {
	case *ast.FuncLit:
		if node := g.byLit[e]; node != nil {
			out = append(out, node)
		}
	case *ast.Ident:
		switch obj := info.Uses[e].(type) {
		case *types.Func:
			if node := g.byFn[obj]; node != nil {
				out = append(out, node)
			}
		case *types.Var:
			out = g.resolveVar(obj, e, owner, depth)
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[e.Sel].(*types.Func); ok { // method value t.M
			if node := g.byFn[fn]; node != nil {
				out = append(out, node)
			}
			break
		}
		if sel, ok := info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			out = g.resolveField(e.Sel.Name, info.Types[expr].Type, depth)
		}
	}
	g.resolveMemo[expr] = out
	return out
}

// resolveField resolves a function-typed struct field to the values the
// module assigns to any same-named field with an identical signature.
func (g *CallGraph) resolveField(name string, fieldType types.Type, depth int) []*GraphNode {
	want := sigKey(fieldType)
	var out []*GraphNode
	seen := map[*GraphNode]bool{}
	for _, pv := range g.fieldAssigns[name] {
		tv, ok := pv.pkg.Info.Types[pv.expr]
		if !ok || sigKey(tv.Type) != want {
			continue
		}
		for _, node := range g.resolveFuncValue(pv.expr, pv.owner, depth-1) {
			if !seen[node] {
				seen[node] = true
				out = append(out, node)
			}
		}
	}
	return out
}

// resolveVar resolves a function-typed variable: parameters through the
// enclosing function's call sites, locals and package-level variables
// through their assignments.
func (g *CallGraph) resolveVar(v *types.Var, use *ast.Ident, owner *GraphNode, depth int) []*GraphNode {
	var out []*GraphNode
	seen := map[*GraphNode]bool{}
	add := func(nodes []*GraphNode) {
		for _, n := range nodes {
			if !seen[n] {
				seen[n] = true
				out = append(out, n)
			}
		}
	}

	// Parameter of the enclosing declared function: resolve the matching
	// argument at every static call site.
	if owner != nil && owner.Fn != nil {
		if idx := paramIndex(owner.Fn, v); idx >= 0 {
			for _, site := range g.callSites[owner.Fn] {
				if idx < len(site.args) {
					add(g.resolveFuncValue(site.args[idx], site.owner, depth-1))
				}
			}
			return out
		}
	}

	// Assignments to the variable, in the owning body (locals) or anywhere
	// in the declaring package (package-level vars).
	scan := func(pkg *Package, root ast.Node) {
		ast.Inspect(root, func(x ast.Node) bool {
			switch st := x.(type) {
			case *ast.AssignStmt:
				for i, lhs := range st.Lhs {
					id, ok := ast.Unparen(lhs).(*ast.Ident)
					if !ok || i >= len(st.Rhs) {
						continue
					}
					if pkg.Info.Uses[id] == v || pkg.Info.Defs[id] == v {
						add(g.resolveFuncValue(st.Rhs[i], g.enclosing(pkg, st.Pos()), depth-1))
					}
				}
			case *ast.ValueSpec:
				for i, name := range st.Names {
					if pkg.Info.Defs[name] == v && i < len(st.Values) {
						add(g.resolveFuncValue(st.Values[i], g.enclosing(pkg, st.Pos()), depth-1))
					}
				}
			}
			return true
		})
	}
	if owner != nil && v.Parent() != nil && v.Parent() != owner.Pkg.Types.Scope() {
		if owner.Body != nil {
			scan(owner.Pkg, owner.Body)
		}
		return out
	}
	if pkg := g.pkgOfObj(v); pkg != nil {
		for _, f := range pkg.Files {
			scan(pkg, f)
		}
	}
	return out
}

func paramIndex(fn *types.Func, v *types.Var) int {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return -1
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if sig.Params().At(i) == v {
			return i
		}
	}
	return -1
}

// enclosing finds the innermost graph node whose body spans pos.
func (g *CallGraph) enclosing(pkg *Package, pos token.Pos) *GraphNode {
	var best *GraphNode
	for _, n := range g.Nodes {
		if n.Pkg != pkg || n.Body == nil {
			continue
		}
		if n.Body.Pos() <= pos && pos <= n.Body.End() {
			if best == nil || n.Body.Pos() >= best.Body.Pos() {
				best = n
			}
		}
	}
	return best
}

func (g *CallGraph) pkgOf(expr ast.Expr) *Package {
	for _, pkg := range g.Mod.Pkgs {
		if pkg.Info == nil {
			continue
		}
		if _, ok := pkg.Info.Types[expr]; ok {
			return pkg
		}
	}
	return nil
}

func (g *CallGraph) pkgOfObj(obj types.Object) *Package {
	if obj.Pkg() == nil {
		return nil
	}
	return g.Mod.byPath[obj.Pkg().Path()]
}

// sigKey renders a signature for structural comparison; method receivers are
// dropped, matching method-value semantics.
func sigKey(t types.Type) string {
	sig, ok := t.Underlying().(*types.Signature)
	if !ok {
		return ""
	}
	var b strings.Builder
	b.WriteByte('(')
	for i := 0; i < sig.Params().Len(); i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(types.TypeString(sig.Params().At(i).Type(), nil))
	}
	b.WriteString(")(")
	for i := 0; i < sig.Results().Len(); i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(types.TypeString(sig.Results().At(i).Type(), nil))
	}
	b.WriteByte(')')
	return b.String()
}

// markRoots applies the root rules: delivery-named internal functions, and
// (already set by resolveValueCalls) values assigned to data-path fields or
// passed to the spawn points.
func (g *CallGraph) markRoots() {
	for _, pkg := range g.Mod.Pkgs {
		if pkg.Info != nil {
			g.scanPackageDecls(pkg)
		}
	}
	for name, pvs := range g.fieldAssigns {
		if !dataPathFields[name] {
			continue
		}
		for _, pv := range pvs {
			for _, node := range g.resolveFuncValue(pv.expr, pv.owner, 4) {
				if node.RootWhy == "" {
					node.RootWhy = "assigned to data-path field " + name
				}
			}
		}
	}
	for _, n := range g.Nodes {
		if n.Fn == nil || n.Decl == nil || !n.Pkg.Internal() {
			continue
		}
		fname := n.Decl.Name.Name
		if dataPathRootNames[fname] || strings.HasPrefix(fname, "Deliver") {
			if n.RootWhy == "" {
				n.RootWhy = "delivery entry point (name)"
			}
		}
	}
}

// propagate runs BFS from the roots, recording each node's predecessor so
// diagnostics can print the full root-to-finding call chain.
func (g *CallGraph) propagate() {
	var queue []*GraphNode
	for _, n := range g.Nodes {
		if n.RootWhy != "" {
			n.reachable = true
			queue = append(queue, n)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, e := range n.Edges {
			if e.To.reachable {
				continue
			}
			e.To.reachable = true
			e.To.parent = n
			e.To.parentPos = e.Pos
			queue = append(queue, e.To)
		}
	}
}

// Chain renders the shortest root-to-node call chain, one frame per line,
// for `scoutlint -why`.
func (g *CallGraph) Chain(n *GraphNode) []string {
	if n == nil || !n.reachable {
		return nil
	}
	var rev []*GraphNode
	for at := n; at != nil; at = at.parent {
		rev = append(rev, at)
	}
	var out []string
	for i := len(rev) - 1; i >= 0; i-- {
		at := rev[i]
		switch {
		case at.parent == nil:
			out = append(out, fmt.Sprintf("%s [root: %s]", at.Name, at.RootWhy))
		default:
			out = append(out, fmt.Sprintf("-> %s (%s)", at.Name, g.pos(at.parentPos)))
		}
	}
	return out
}

func (g *CallGraph) pos(p token.Pos) string {
	position := g.Mod.Fset.Position(p)
	file := position.Filename
	if rel := relTo(g.Mod.Root, file); rel != "" {
		file = rel
	}
	return fmt.Sprintf("%s:%d", file, position.Line)
}

func relTo(root, file string) string {
	if strings.HasPrefix(file, root+"/") {
		return file[len(root)+1:]
	}
	return ""
}

// NodesIn returns the graph nodes belonging to pkg, in position order.
func (g *CallGraph) NodesIn(pkg *Package) []*GraphNode {
	var out []*GraphNode
	for _, n := range g.Nodes {
		if n.Pkg == pkg {
			out = append(out, n)
		}
	}
	return out
}

// NodeByName finds a node by its rendered name (tests and tooling).
func (g *CallGraph) NodeByName(name string) *GraphNode {
	for _, n := range g.Nodes {
		if n.Name == name {
			return n
		}
	}
	return nil
}

// Dump writes the graph in a stable text form: a header, the sorted root
// set, and the sorted edge list. CI archives this as a build artifact so a
// reviewer can diff how the data-path surface changed.
func (g *CallGraph) Dump(w io.Writer) error {
	reach := 0
	edges := 0
	for _, n := range g.Nodes {
		if n.reachable {
			reach++
		}
		edges += len(n.Edges)
	}
	if _, err := fmt.Fprintf(w, "# data-path call graph: %d nodes, %d edges, %d reachable from roots\n",
		len(g.Nodes), edges, reach); err != nil {
		return err
	}
	var roots, edgeLines []string
	for _, n := range g.Nodes {
		if n.RootWhy != "" {
			roots = append(roots, fmt.Sprintf("root %s\t%s", n.Name, n.RootWhy))
		}
		for _, e := range n.Edges {
			edgeLines = append(edgeLines, fmt.Sprintf("edge %s -> %s\t%s\t%s", n.Name, e.To.Name, e.Kind, g.pos(e.Pos)))
		}
	}
	sort.Strings(roots)
	sort.Strings(edgeLines)
	for _, l := range append(roots, edgeLines...) {
		if _, err := fmt.Fprintln(w, l); err != nil {
			return err
		}
	}
	return nil
}
