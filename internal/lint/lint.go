// Package lint implements scoutlint, a static-analysis suite that enforces
// the repo's path invariants (§3.2 of the paper: attributes and invariants
// established at path-creation time are what make path optimizations sound).
// The analyzers machine-check what DESIGN.md promises in prose: virtual-clock
// determinism, the typed attr.Name vocabulary, error discipline on the data
// path, fbuf/lock hygiene, and no silently dropped errors.
//
// The suite is built on the Go standard library only (go/parser, go/ast,
// go/types, go/importer); go.mod stays dependency-free.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// Diagnostic is one finding. File is relative to the module root so output
// and allowlist entries are stable across checkouts.
type Diagnostic struct {
	File string
	Line int
	Col  int
	Rule string
	Msg  string
	// Chain, when set, is the data-path call chain (root first) that makes
	// the finding reachable; `scoutlint -why` prints it under the finding.
	Chain []string
}

// String renders the finding in the canonical "file:line: [rule] msg" form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", d.File, d.Line, d.Rule, d.Msg)
}

// Analyzer is one invariant checker. Run is called once per package with a
// Pass whose Files respect the analyzer's scope flags.
type Analyzer struct {
	Name string
	Doc  string
	// IncludeTests adds _test.go files (syntax only, no type info) to the
	// pass. Analyzers that need type info must tolerate Info==nil misses
	// on those files or inspect pass.IsTestFile.
	IncludeTests bool
	// InternalOnly restricts the analyzer to packages under
	// <module>/internal/.
	InternalOnly bool
	// NeedsTypes skips packages whose type-check failed entirely.
	NeedsTypes bool
	Run        func(*Pass)
}

// Pass is the per-(analyzer, package) unit of work handed to Analyzer.Run.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	// Files are the files in scope for this analyzer (test files included
	// only when the analyzer asked for them).
	Files  []*ast.File
	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.ReportfChain(pos, nil, format, args...)
}

// ReportfChain records a finding at pos with the call chain that reaches it;
// the interprocedural analyzers use it so `-why` can print how the data path
// gets there.
func (p *Pass) ReportfChain(pos token.Pos, chain []string, format string, args ...any) {
	position := p.Pkg.Mod.Fset.Position(pos)
	file := position.Filename
	if rel, err := filepath.Rel(p.Pkg.Mod.Root, file); err == nil {
		file = filepath.ToSlash(rel)
	}
	p.report(Diagnostic{
		File:  file,
		Line:  position.Line,
		Col:   position.Column,
		Rule:  p.Analyzer.Name,
		Msg:   fmt.Sprintf(format, args...),
		Chain: chain,
	})
}

// IsTestFile reports whether f was parsed from a _test.go file.
func (p *Pass) IsTestFile(f *ast.File) bool {
	name := p.Pkg.Mod.Fset.Position(f.Package).Filename
	return strings.HasSuffix(name, "_test.go")
}

// All returns every analyzer in the suite, in stable order: the per-function
// checks first, then the call-graph-backed interprocedural ones.
func All() []*Analyzer {
	return []*Analyzer{
		Simclock, AttrKey, NoPanic, LockSafe, ErrCheck, FlowGuard,
		DetLint, ShardGuard, GoGuard, NoPanicDeep, LockSafeDeep, ErrCheckDeep,
	}
}

// ByName resolves a comma-separated analyzer list ("simclock,attrkey").
func ByName(names string) ([]*Analyzer, error) {
	byName := make(map[string]*Analyzer)
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// Run loads the module rooted at root and applies the analyzers to every
// package, returning the findings sorted by position.
func Run(root string, analyzers []*Analyzer) ([]Diagnostic, error) {
	mod, err := Load(root)
	if err != nil {
		return nil, err
	}
	return RunModule(mod, analyzers), nil
}

// AnalyzerTiming is the wall time one analyzer spent across all packages.
type AnalyzerTiming struct {
	Name    string
	Elapsed time.Duration
}

// RunModule applies the analyzers to an already-loaded module.
func RunModule(mod *Module, analyzers []*Analyzer) []Diagnostic {
	diags, _ := RunModuleTimed(mod, analyzers, nil)
	return diags
}

// RunModuleTimed is RunModule plus per-analyzer wall-time attribution. The
// clock is injected by the caller (cmd/scoutlint passes time.Now) because
// internal/ code may not read the wall clock directly — simclock enforces
// that, including on this package. A nil now skips timing.
func RunModuleTimed(mod *Module, analyzers []*Analyzer, now func() time.Time) ([]Diagnostic, []AnalyzerTiming) {
	elapsed := make(map[string]time.Duration)
	var diags []Diagnostic
	for _, pkg := range mod.Pkgs {
		for _, a := range analyzers {
			if a.InternalOnly && !pkg.Internal() {
				continue
			}
			if a.NeedsTypes && pkg.Types == nil {
				continue
			}
			files := pkg.Files
			if a.IncludeTests {
				files = append(append([]*ast.File{}, pkg.Files...), pkg.TestFiles...)
			}
			if len(files) == 0 {
				continue
			}
			pass := &Pass{
				Analyzer: a,
				Pkg:      pkg,
				Files:    files,
				report:   func(d Diagnostic) { diags = append(diags, d) },
			}
			if now != nil {
				start := now()
				a.Run(pass)
				elapsed[a.Name] += now().Sub(start)
			} else {
				a.Run(pass)
			}
		}
	}
	var timings []AnalyzerTiming
	if now != nil {
		for _, a := range analyzers {
			timings = append(timings, AnalyzerTiming{Name: a.Name, Elapsed: elapsed[a.Name]})
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		if diags[i].File != diags[j].File {
			return diags[i].File < diags[j].File
		}
		if diags[i].Line != diags[j].Line {
			return diags[i].Line < diags[j].Line
		}
		if diags[i].Col != diags[j].Col {
			return diags[i].Col < diags[j].Col
		}
		return diags[i].Rule < diags[j].Rule
	})
	return diags, timings
}
