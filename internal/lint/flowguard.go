package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// FlowGuard confines device-edge flow-cache state changes to the sim-event
// control plane. The cache (core.FlowCache) is mutated with no locks because
// every legal mutation site — classifier insert, rule application, binding
// changes, ARP learning, path destroy hooks — runs inside the engine's
// single-threaded event loop. Two things would break that discipline, and
// both are flagged statically:
//
//   - mutation calls from packages outside the control plane (core, netdev,
//     proto/*, appliance, mpath, splice): experiments, hosts and tools must drive the
//     cache through protocol operations, never poke it directly;
//   - mutation calls inside a `go` statement anywhere: a spawned goroutine
//     escapes the event loop and races every unlocked cache access.
//
// Reads (Lookup, Stats, Len) stay unrestricted — they are how experiments
// and the tracing subsystem observe the cache.
var FlowGuard = &Analyzer{
	Name:       "flowguard",
	Doc:        "flow-cache mutations only from control-plane packages, never from spawned goroutines",
	NeedsTypes: true,
	Run:        runFlowGuard,
}

// flowMutators maps receiver type name to its cache-state-changing methods.
// Matching is by type and method name: the suite's stdlib-only loader cannot
// resolve cross-package identity for testdata, and the names are unique in
// this module.
var flowMutators = map[string]map[string]bool{
	"FlowCache": {"Insert": true, "InvalidatePath": true, "InvalidateAll": true},
	"Graph":     {"RegisterFlowCache": true, "InvalidateFlows": true},
}

// flowControlPlane lists the package-path prefixes (relative to the module
// root) that constitute the control plane.
var flowControlPlane = []string{
	"/internal/core",
	"/internal/netdev",
	"/internal/proto/",
	"/internal/appliance",
	// mpath's re-pin is a control-plane event by design: retiring a subpath
	// fans into its device's flow cache as an InvalidatePath, all from
	// sender-dispatch context inside the event loop.
	"/internal/mpath",
	// splice is pure control plane: migrations run on link-death events,
	// never per packet, and must invalidate both the retired and the
	// adopting device's caches during the pause window.
	"/internal/splice",
}

func runFlowGuard(pass *Pass) {
	allowed := false
	for _, suffix := range flowControlPlane {
		prefix := pass.Pkg.Mod.Path + suffix
		if pass.Pkg.Path == strings.TrimSuffix(prefix, "/") || strings.HasPrefix(pass.Pkg.Path, prefix) {
			allowed = true
			break
		}
	}
	info := pass.Pkg.Info
	for _, f := range pass.Files {
		// Spans of every `go` statement: a call inside one runs on a fresh
		// goroutine no matter how deeply nested the literal is.
		var goSpans [][2]ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				goSpans = append(goSpans, [2]ast.Node{g, g})
			}
			return true
		})
		inGo := func(n ast.Node) bool {
			for _, s := range goSpans {
				if n.Pos() >= s[0].Pos() && n.End() <= s[1].End() {
					return true
				}
			}
			return false
		}

		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			recv, method, ok := flowMutatorCall(info, call)
			if !ok {
				return true
			}
			switch {
			case inGo(call):
				pass.Reportf(call.Pos(), "%s.%s inside a spawned goroutine races the engine's single-threaded event loop; mutate the flow cache from sim-event context only", recv, method)
			case !allowed:
				pass.Reportf(call.Pos(), "%s.%s outside the control plane (core, netdev, proto/*, appliance, mpath, splice); drive cache state through protocol operations instead", recv, method)
			}
			return true
		})
	}
}

// flowMutatorCall reports whether call invokes a cache-mutating method,
// returning the receiver type and method names.
func flowMutatorCall(info *types.Info, call *ast.CallExpr) (recv, method string, ok bool) {
	sel, okSel := call.Fun.(*ast.SelectorExpr)
	if !okSel || info == nil {
		return "", "", false
	}
	tv, okType := info.Types[sel.X]
	if !okType {
		return "", "", false
	}
	t := tv.Type
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return "", "", false
	}
	methods, isTracked := flowMutators[named.Obj().Name()]
	if !isTracked || !methods[sel.Sel.Name] {
		return "", "", false
	}
	return named.Obj().Name(), sel.Sel.Name, true
}
