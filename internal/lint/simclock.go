package lint

import (
	"go/ast"
	"go/types"
	"strconv"
)

// Simclock enforces virtual-clock determinism (DESIGN.md's substitution
// table: wall-clock time is replaced by the discrete-event clock in
// internal/sim). Code under internal/ must not consult the wall clock or the
// global math/rand source: results would differ run to run, and the paper's
// experiments (Tables 1-5) are only reproducible because every delay and
// every random draw comes from the seeded simulation engine.
var Simclock = &Analyzer{
	Name:         "simclock",
	Doc:          "forbid wall-clock time and global math/rand in virtual-clock code",
	IncludeTests: true,
	InternalOnly: true,
	Run:          runSimclock,
}

// timeBanned are the package time functions that read or wait on the wall
// clock. Types and constants (time.Duration, time.Millisecond) stay legal:
// the virtual clock measures in time.Duration too.
var timeBanned = map[string]string{
	"Now":       "read the engine clock (sim.Engine.Now) instead",
	"Sleep":     "schedule a sim event (sim.Engine.At/Tick) instead",
	"After":     "schedule a sim event (sim.Engine.At/Tick) instead",
	"Tick":      "schedule a sim event (sim.Engine.Tick) instead",
	"AfterFunc": "schedule a sim event (sim.Engine.At) instead",
	"NewTimer":  "schedule a sim event (sim.Engine.At) instead",
	"NewTicker": "schedule a sim event (sim.Engine.Tick) instead",
	"Since":     "subtract sim.Engine.Now values instead",
	"Until":     "subtract sim.Engine.Now values instead",
}

// randBanned are the package-level math/rand functions that draw from the
// unseeded (or globally shared) source. rand.New(rand.NewSource(seed)) is
// the sanctioned form: every path/experiment owns a seeded generator.
var randBanned = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "IntN": true, "Int32": true,
	"Int32N": true, "Int64": true, "Int64N": true, "N": true,
	"Uint32": true, "Uint64": true, "Uint32N": true, "Uint64N": true,
	"UintN": true, "Uint": true, "Float32": true, "Float64": true,
	"ExpFloat64": true, "NormFloat64": true, "Perm": true,
	"Shuffle": true, "Seed": true, "Read": true,
}

func runSimclock(pass *Pass) {
	for _, f := range pass.Files {
		timeNames, randNames := clockImports(f)
		if len(timeNames) == 0 && len(randNames) == 0 {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			// With type info, make sure the identifier really is the
			// package and not a shadowing local; without it (test
			// files), trust the import name.
			if pass.Pkg.Info != nil {
				if obj, ok := pass.Pkg.Info.Uses[id]; ok {
					if _, isPkg := obj.(*types.PkgName); !isPkg {
						return true
					}
				}
			}
			if timeNames[id.Name] {
				if why, banned := timeBanned[sel.Sel.Name]; banned {
					pass.Reportf(sel.Pos(), "wall-clock time.%s breaks virtual-clock determinism; %s", sel.Sel.Name, why)
				}
			}
			if randNames[id.Name] && randBanned[sel.Sel.Name] {
				pass.Reportf(sel.Pos(), "global %s.%s draws from a shared unseeded source; use a seeded rand.New(rand.NewSource(seed))", id.Name, sel.Sel.Name)
			}
			return true
		})
	}
}

// clockImports returns the local names under which f imports "time" and
// "math/rand" (or "math/rand/v2").
func clockImports(f *ast.File) (timeNames, randNames map[string]bool) {
	timeNames = map[string]bool{}
	randNames = map[string]bool{}
	for _, imp := range f.Imports {
		path, err := strconv.Unquote(imp.Path.Value)
		if err != nil {
			continue
		}
		name := ""
		if imp.Name != nil {
			name = imp.Name.Name
			if name == "_" || name == "." {
				continue
			}
		}
		switch path {
		case "time":
			if name == "" {
				name = "time"
			}
			timeNames[name] = true
		case "math/rand", "math/rand/v2":
			if name == "" {
				name = "rand"
			}
			randNames[name] = true
		}
	}
	return timeNames, randNames
}
