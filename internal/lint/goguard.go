package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// GoGuard keeps goroutine creation off the data path. The whole kernel is a
// single-threaded event loop (flowguard already relies on that for the flow
// cache); a `go` statement reachable from a Deliver chain or thread body
// spawns concurrency the virtual clock cannot see, breaking both
// determinism and the shard-confinement precondition of the parallel kernel
// (ROADMAP item 1). Legitimate spawn points — test harness drivers, future
// shard workers — must be marked with a `//scout:spawn <why>` comment on or
// immediately above the statement, so every escape from the event loop is a
// documented decision.
var GoGuard = &Analyzer{
	Name:       "goguard",
	Doc:        "no `go` statements reachable from the data path outside annotated spawn points",
	NeedsTypes: true,
	Run:        runGoGuard,
}

func runGoGuard(pass *Pass) {
	g := pass.Pkg.Mod.Graph()
	for _, n := range g.NodesIn(pass.Pkg) {
		if !n.Reachable() {
			continue
		}
		n.inspectOwn(func(x ast.Node) bool {
			gs, ok := x.(*ast.GoStmt)
			if !ok {
				return true
			}
			if spawnAnnotated(pass, gs.Pos()) {
				return true
			}
			pass.ReportfChain(gs.Pos(), g.Chain(n),
				"`go` statement reachable from the data path escapes the single-threaded event loop; run the work as a sim event, or annotate an intended spawn point with //scout:spawn <why>")
			return true
		})
	}
}

// spawnAnnotated reports whether a `//scout:spawn <why>` comment (with a
// non-empty reason) sits on the statement's line or the line above it.
func spawnAnnotated(pass *Pass, pos token.Pos) bool {
	fset := pass.Pkg.Mod.Fset
	position := fset.Position(pos)
	f := fileAt(pass, pos)
	if f == nil {
		return false
	}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			idx := strings.Index(c.Text, "scout:spawn")
			if idx < 0 || strings.TrimSpace(c.Text[idx+len("scout:spawn"):]) == "" {
				continue
			}
			cl := fset.Position(c.End()).Line
			if cl == position.Line || cl == position.Line-1 {
				return true
			}
		}
	}
	return false
}

// fileAt finds the parsed file containing pos among the pass's files.
func fileAt(pass *Pass, pos token.Pos) *ast.File {
	for _, f := range pass.Files {
		if f.FileStart <= pos && pos <= f.FileEnd {
			return f
		}
	}
	return nil
}
