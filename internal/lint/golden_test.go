package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// loadTestPackage loads one testdata directory as a single-package module,
// pretending it lives at asPath (so package-scoped rules like "internal/
// only" and "the vocabulary package" can be exercised both ways).
func loadTestPackage(t *testing.T, dir, asPath string) *Module {
	t.Helper()
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatal(err)
	}
	mod := &Module{Root: abs, Path: "scout", Fset: token.NewFileSet(), byPath: map[string]*Package{}}
	pkg, err := mod.parseDir(abs)
	if err != nil {
		t.Fatal(err)
	}
	if pkg == nil {
		t.Fatalf("no Go files in %s", dir)
	}
	pkg.Path = asPath
	mod.Pkgs = []*Package{pkg}
	mod.byPath[asPath] = pkg
	mi := &modImporter{mod: mod, std: newStdImporter(mod.Fset)}
	mi.check(pkg)
	for _, e := range pkg.TypeErrs {
		t.Fatalf("testdata %s does not type-check: %v", dir, e)
	}
	return mod
}

var wantQuotedRe = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

// wants maps file:line to the expected message substrings declared in
// `// want "..."` comments on that line.
func collectWants(t *testing.T, mod *Module) map[string][]string {
	t.Helper()
	wants := make(map[string][]string)
	for _, pkg := range mod.Pkgs {
		for _, f := range append(append([]*ast.File{}, pkg.Files...), pkg.TestFiles...) {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					idx := strings.Index(c.Text, "want ")
					if idx < 0 {
						continue
					}
					pos := mod.Fset.Position(c.Pos())
					key := fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line)
					for _, q := range wantQuotedRe.FindAllString(c.Text[idx:], -1) {
						s, err := strconv.Unquote(q)
						if err != nil {
							t.Fatalf("%s: bad want string %s: %v", key, q, err)
						}
						wants[key] = append(wants[key], s)
					}
				}
			}
		}
	}
	return wants
}

// TestGolden runs every analyzer over its testdata package and requires the
// findings to agree, line by line, with the // want comments — both
// directions: every want must fire, and every finding must be wanted.
func TestGolden(t *testing.T) {
	cases := []struct {
		analyzer *Analyzer
		dir      string
		asPath   string
	}{
		{Simclock, "testdata/simclock", "scout/internal/fake"},
		{AttrKey, "testdata/attrkey", "scout/internal/fake"},
		{AttrKey, "testdata/attrkeydecl", "scout/internal/attr"},
		{NoPanic, "testdata/nopanic", "scout/internal/fake"},
		{LockSafe, "testdata/locksafe", "scout/internal/fake"},
		{ErrCheck, "testdata/errchecklite", "scout/internal/fake"},
		{FlowGuard, "testdata/flowguard", "scout/internal/fake"},
		{DetLint, "testdata/detlint", "scout/internal/fake"},
		{DetLint, "testdata/detexport", "scout/cmd/fake"},
		{ShardGuard, "testdata/shardguard", "scout/internal/fake"},
		{GoGuard, "testdata/goguard", "scout/internal/fake"},
		{NoPanicDeep, "testdata/nopanicdeep", "scout/internal/fake"},
		{LockSafeDeep, "testdata/locksafedeep", "scout/internal/fake"},
	}
	for _, tc := range cases {
		name := tc.analyzer.Name + "/" + filepath.Base(tc.dir)
		t.Run(name, func(t *testing.T) {
			mod := loadTestPackage(t, tc.dir, tc.asPath)
			diags := RunModule(mod, []*Analyzer{tc.analyzer})
			wants := collectWants(t, mod)

			matched := make(map[string]int) // key -> how many wants satisfied
			for _, d := range diags {
				key := fmt.Sprintf("%s:%d", d.File, d.Line)
				ws := wants[key]
				found := false
				for _, w := range ws {
					if strings.Contains(d.Msg, w) {
						found = true
						matched[key]++
						break
					}
				}
				if !found {
					t.Errorf("unexpected finding %s (no matching want on that line)", d)
				}
			}
			for key, ws := range wants {
				if matched[key] < len(ws) {
					t.Errorf("%s: wanted %d finding(s) matching %q, matched %d",
						key, len(ws), ws, matched[key])
				}
			}
		})
	}
}

// TestAnalyzerScope checks InternalOnly: the same violating file produces
// nothing when the package lives outside internal/.
func TestAnalyzerScope(t *testing.T) {
	mod := loadTestPackage(t, "testdata/simclock", "scout/cmd/fake")
	if diags := RunModule(mod, []*Analyzer{Simclock}); len(diags) != 0 {
		t.Fatalf("simclock fired outside internal/: %v", diags)
	}
	// attrkey is module-wide: the same relocation must NOT silence it.
	mod = loadTestPackage(t, "testdata/attrkey", "scout/cmd/fake")
	if diags := RunModule(mod, []*Analyzer{AttrKey}); len(diags) == 0 {
		t.Fatal("attrkey is module-wide but reported nothing outside internal/")
	}
}

// TestFlowGuardScope checks the control-plane allowance: relocated into
// internal/core, the same file keeps only the spawned-goroutine finding —
// that rule holds even inside the control plane.
func TestFlowGuardScope(t *testing.T) {
	mod := loadTestPackage(t, "testdata/flowguard", "scout/internal/core")
	diags := RunModule(mod, []*Analyzer{FlowGuard})
	if len(diags) != 1 || !strings.Contains(diags[0].Msg, "spawned goroutine") {
		t.Fatalf("want exactly the goroutine finding inside the control plane, got %v", diags)
	}
}

// TestTestFileCoverage checks that IncludeTests analyzers see _test.go
// files: the simclock testdata ships a bench_test.go with a wall-clock call.
func TestTestFileCoverage(t *testing.T) {
	mod := loadTestPackage(t, "testdata/simclock", "scout/internal/fake")
	diags := RunModule(mod, []*Analyzer{Simclock})
	found := false
	for _, d := range diags {
		if d.File == "bench_test.go" {
			found = true
		}
	}
	if !found {
		t.Fatal("simclock reported nothing from bench_test.go; test files are out of scope")
	}
}
