package fake

import "sync"

type stage struct {
	mu      sync.Mutex
	Deliver func()
	n       int
}

// Inject is a data-path root by name.
func Inject(s *stage) {
	s.mu.Lock()
	s.bump()    // OK: nothing below reaches a callback
	s.forward() // want "invokes a callback"
	s.mu.Unlock()
	s.forward() // OK: lock released
}

func (s *stage) bump() { s.n++ }

// forward hands off through one more hop; the callback is two frames below
// the locked call site, where base locksafe cannot see it.
func (s *stage) forward() { s.hop() }

func (s *stage) hop() {
	if s.Deliver != nil {
		s.Deliver()
	}
}
