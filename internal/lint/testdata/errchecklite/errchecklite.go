// Golden input for the errcheck-lite analyzer: bare statements that drop an
// error result fire; explicit discards and exempted callees do not.
package fake

import (
	"errors"
	"fmt"
	"strings"
)

func mayFail() error { return errors.New("x") }

func pair() (int, error) { return 0, nil }

func pure() int { return 0 }

func bad() {
	mayFail() // want "mayFail returns an error that is silently discarded"
	pair()    // want "pair returns an error that is silently discarded"
}

func good() error {
	_ = mayFail() // explicit discard is visible and greppable
	_, _ = pair()
	pure()            // no error result
	fmt.Println("ok") // exempt: best-effort terminal output
	var b strings.Builder
	b.WriteString("x") // exempt: documented never to fail
	if err := mayFail(); err != nil {
		return err
	}
	return mayFail()
}
