// Golden input for the attrkey analyzer, loaded as an ordinary internal
// package (NOT the vocabulary): every PA_ literal must fire, whether used
// raw or smuggled into a local const declaration.
package fake

const AttrLocal = "PA_LOCAL_THING" // want "declared outside the vocabulary packages"

func f() {
	use("PA_BAR_BAZ") // want "raw attribute name \"PA_BAR_BAZ\""
	use("pa_lower")   // no finding: not an attribute-name shape
	use("PANICKY")    // no finding: no PA_ prefix
	use("PA_x")       // no finding: lowercase body
}

func g() {
	const nested = "PA_NESTED" // want "declared outside the vocabulary packages"
	use(nested)
}

func use(string) {}
