// Golden input for the nopanic analyzer: panics in constructors, init, and
// must* helpers are legal; panics anywhere else on the data path fire.
package fake

import "errors"

type T struct{}

// New is a constructor: panicking on impossible configuration is allowed.
func New(n int) *T {
	if n < 0 {
		panic("fake: negative size")
	}
	return &T{}
}

// NewThing likewise.
func NewThing() *T { return New(1) }

func init() {
	if false {
		panic("boot-time consistency check")
	}
}

// mustSize is a must* helper: its entire job is converting errors to panics.
func mustSize(n int) int {
	if n < 0 {
		panic("fake: bad size")
	}
	return n
}

// MustGet is the exported spelling of the same convention.
func MustGet(t *T, err error) *T {
	if err != nil {
		panic(err)
	}
	return t
}

// Deliver is data-path code: a bad message must become an error.
func (t *T) Deliver(n int) error {
	if n < 0 {
		panic("fake: negative delivery") // want "panic in data-path code (Deliver)"
	}
	return errors.New("unimplemented")
}

// helper shows that function literals inherit the enclosing declaration.
func helper() {
	f := func() {
		panic("inner") // want "panic in data-path code (helper)"
	}
	f()
}
