package fake

// Inject is a data-path root by name.
func Inject(work func()) {
	go work() // want "escapes the single-threaded event loop"

	//scout:spawn test harness driver, joined before the clock advances
	go work() // OK: annotated on the line above

	go work() //scout:spawn same-line annotation also accepted

	relay(work)
}

// relay is reachable through Inject; the spawn three calls down still fires.
func relay(work func()) {
	indirect(work)
}

func indirect(work func()) {
	go work() // want "escapes the single-threaded event loop"
}

// offPath spawns freely: it is not reachable from any data-path root.
func offPath(work func()) {
	go work()
}
