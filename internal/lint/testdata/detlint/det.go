package fake

import "sort"

// Inject is a data-path root by name (delivery entry point).
func Inject(m map[int]int, weights map[string]float64) {
	for k := range m { // want "order-nondeterministic"
		consume(k)
	}

	total := 0
	for _, v := range m { // OK: commutative integer accumulation
		total += v
	}
	consume(total)

	var acc float64
	for _, w := range weights { // want "order-nondeterministic"
		acc += w // float addition is not associative
	}
	_ = acc

	out := map[int]int{}
	for k, v := range m { // OK: per-key writes into another map
		out[k] = v * 2
	}

	keys := make([]int, 0, len(m))
	for k := range m { // OK: collect-then-sort
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		consume(k)
	}

	unsorted := make([]int, 0, len(m))
	for k := range m { // want "order-nondeterministic"
		unsorted = append(unsorted, k)
	}
	consume(len(unsorted)) // appended but never sorted

	helper(m)
}

// helper is reachable only through Inject; the finding is interprocedural.
func helper(m map[int]int) {
	for k, v := range m { // want "order-nondeterministic"
		consume(k + v)
	}
}

func consume(int) {}

// offPath is reachable from nothing; its iteration order never leaks into
// simulation output, so detlint stays quiet.
func offPath(m map[int]int) {
	for k := range m {
		consume(k)
	}
}
