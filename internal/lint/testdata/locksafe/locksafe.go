// Golden input for the locksafe analyzer: function-typed fields and
// parameters invoked under a held mutex fire; declared methods and calls
// after release do not.
package fake

import "sync"

type Pool struct {
	mu     sync.Mutex
	onFree func(int)
}

func (p *Pool) Bad(n int) {
	p.mu.Lock()
	p.onFree(n) // want "callback p.onFree invoked while p.mu is held"
	p.mu.Unlock()
}

func (p *Pool) BadDeferred(cb func()) {
	p.mu.Lock()
	defer p.mu.Unlock() // lock held to function end
	cb()                // want "callback cb invoked while p.mu is held"
}

func (p *Pool) GoodSnapshot(n int) {
	p.mu.Lock()
	cb := p.onFree
	p.mu.Unlock()
	cb(n) // no finding: mutex released before the call
}

func (p *Pool) GoodMethod() {
	p.mu.Lock()
	p.compact() // no finding: declared method, not a function value
	p.mu.Unlock()
}

func (p *Pool) GoodBefore(cb func()) {
	cb() // no finding: called before the lock
	p.mu.Lock()
	p.mu.Unlock()
}

func (p *Pool) compact() {}

type Cache struct {
	mu sync.RWMutex
	f  func()
}

func (c *Cache) BadUnderReadLock() {
	c.mu.RLock()
	c.f() // want "callback c.f invoked while c.mu is held (RLock"
	c.mu.RUnlock()
}
