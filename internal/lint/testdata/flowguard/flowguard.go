// Package fake exercises the flowguard analyzer: cache mutations from a
// non-control-plane package, and from a spawned goroutine.
package fake

type Path struct{}

type FlowCache struct{}

func (f *FlowCache) Insert(k int, p *Path)      {}
func (f *FlowCache) InvalidatePath(p *Path)     {}
func (f *FlowCache) InvalidateAll()             {}
func (f *FlowCache) Lookup(k int) (*Path, bool) { return nil, false }
func (f *FlowCache) Len() int                   { return 0 }

type Graph struct{}

func (g *Graph) InvalidateFlows()               {}
func (g *Graph) RegisterFlowCache(f *FlowCache) {}

func outsideControlPlane(fc *FlowCache, g *Graph) {
	fc.Insert(1, nil)       // want "outside the control plane"
	fc.InvalidatePath(nil)  // want "outside the control plane"
	fc.InvalidateAll()      // want "outside the control plane"
	g.InvalidateFlows()     // want "outside the control plane"
	g.RegisterFlowCache(fc) // want "outside the control plane"

	// Reads are observation, not mutation: legal anywhere.
	fc.Lookup(1)
	_ = fc.Len()
}

func spawned(fc *FlowCache) {
	go func() {
		fc.InvalidateAll() // want "spawned goroutine"
	}()
}
