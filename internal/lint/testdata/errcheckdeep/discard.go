package fake

// errcheck-deep positives cannot carry `// want` markers — any comment on
// the discard's line (or the line above) is read as the justification the
// analyzer asks for. TestErrCheckDeep asserts the findings by function.

import "errors"

var errShort = errors.New("short")

func send(n int) error {
	if n < 0 {
		return errShort
	}
	return nil
}

func parse(n int) (int, error) { return n, nil }

// Inject is a data-path root by name. It discards twice without a word and
// twice with one.
func Inject(n int) {

	_ = send(n)

	v, _ := parse(n)

	consume(v)

	// the queue's drop counter already recorded the failure
	_ = send(n)

	w, _ := parse(n) // parse cannot fail for non-negative n
	consume(w)

	deep(n)
}

// deep buries the last bare discard two calls down.
func deep(n int) {
	relay(n)
}

func relay(n int) {

	_ = send(n)

}

func consume(int) {}

// offPath discards bare too, but nothing on the path reaches it.
func offPath(n int) {

	_ = send(n)

}
