package fake

import (
	"encoding/json"
	"sort"
	"time"
)

// The package imports encoding/json, so every function is in detlint's
// export scope regardless of call-graph reachability.

type report struct {
	Names []string
}

func render(counts map[string]int) []byte {
	var r report
	for name := range counts { // want "order-nondeterministic"
		r.Names = append(r.Names, name)
	}
	out, _ := json.Marshal(r)
	return out
}

func renderSorted(counts map[string]int) []byte {
	names := make([]string, 0, len(counts))
	for name := range counts { // OK: collect-then-sort
		names = append(names, name)
	}
	sort.Strings(names)
	out, _ := json.Marshal(report{Names: names})
	return out
}

// dev wires a data-path root so the wall-clock rule (which simclock only
// enforces under internal/) is exercised out here too.
type dev struct {
	Deliver func()
}

func wire(d *dev) {
	d.Deliver = pump
}

func pump() {
	stamp = time.Now() // want "wall-clock"
}

var stamp time.Time
