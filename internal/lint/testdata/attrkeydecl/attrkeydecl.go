// Golden input for the attrkey analyzer, loaded AS the vocabulary package
// (scout/internal/attr): const declarations are the one legal spelling
// site; raw uses outside const blocks still fire even here.
package fake

type Name string

// The declaration block below is the legal spelling site.
const (
	Foo    Name = "PA_FOO"     // no finding: const decl in the vocabulary package
	BarBaz Name = "PA_BAR_BAZ" // no finding
)

func f() {
	use(string(Foo))
	use("PA_FOO") // want "raw attribute name"
}

func use(string) {}
