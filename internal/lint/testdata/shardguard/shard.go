package fake

import (
	"sync"
	"sync/atomic"
)

// hits is mutated from the data path with no synchronization: the finding.
var hits int

// counters is an all-atomic struct: shard-safe by type.
var counters struct {
	packets atomic.Int64
	bytes   atomic.Int64
}

// registry is guarded by regMu everywhere it is touched on the path.
var (
	regMu    sync.Mutex
	registry = map[string]int{}
)

// bootTable is written only by init: immutable after boot.
var bootTable [256]byte

func init() {
	for i := range bootTable {
		bootTable[i] = byte(i)
	}
}

// scratch is mutated on the path but documented as shard-confined.
//
//scout:confined one instance per shard, rebound at shard start
var scratch []byte

// Inject is a data-path root by name.
func Inject(n int) {
	hits += n // want "package-level mutable"

	counters.packets.Add(1) // OK: atomic

	regMu.Lock()
	registry["x"] = n // OK: lock held
	regMu.Unlock()

	consume(bootTable[n&0xff]) // OK: init-only

	scratch = append(scratch, byte(n)) // OK: annotated confined

	touchUnlocked()
}

// touchUnlocked reads the registry without the lock, three calls down.
func touchUnlocked() {
	consume(byte(registry["x"])) // want "package-level mutable"
}

func consume(byte) {}

// offPath mutates hits too, but is unreachable: counted as a writer (it
// makes hits "mutated"), yet produces no finding itself.
func offPath() {
	hits++
}
