package fake

// Inject is a data-path root by name. Base nopanic exempts New* and must*
// functions wholesale; nopanic-deep re-checks them the moment a delivery
// chain can actually reach them.
func Inject(n int) {
	buf := NewBuffer(n)
	mustAlign(n)
	checkOwner(buf, n)
}

// NewBuffer panics on bad input and is base-exempt (New* prefix) — but it
// is on the path now, and nothing documents the panic as an assertion.
func NewBuffer(n int) []byte {
	if n < 0 {
		panic("negative size") // want "reachable from the data path"
	}
	return make([]byte, n)
}

// mustAlign is base-exempt (must* prefix), reachable, undocumented.
func mustAlign(n int) {
	if n%8 != 0 {
		panic("unaligned") // want "reachable from the data path"
	}
}

// checkOwner carries the marker: its panic is a documented fail-loud
// assertion, legal even on the path.
//
//scout:assert a foreign owner means the buffer table is corrupt; continuing would alias memory
func checkOwner(buf []byte, owner int) {
	if len(buf) > 0 && owner < 0 {
		panic("foreign owner") // OK: //scout:assert
	}
}

// NewOffPath panics too, but no chain reaches it: only base nopanic's
// New*-exemption applies, and nopanic-deep stays quiet.
func NewOffPath(n int) []byte {
	if n < 0 {
		panic("negative size")
	}
	return make([]byte, n)
}
