package fake

type handler interface {
	Handle(int)
}

type alpha struct{ n int }

func (a *alpha) Handle(n int) { a.n = n }

type beta struct{ n int }

func (b *beta) Handle(n int) { b.n = n }

type device struct {
	OnReceive func(int)
	h         handler
}

// Inject is a root by name; it dispatches through an interface and makes
// one static call.
func Inject(d *device, n int) {
	d.h.Handle(n)
	step(n)
}

func step(n int) { sink(n) }

// wire makes rx a root by assigning it to a data-path field, and routes a
// method value through a function parameter.
func wire(d *device, a *alpha) {
	d.OnReceive = rx
	call(a.Handle)
}

func rx(n int) { sink(n) }

func sink(int) {}

func call(f func(int)) { f(1) }

// Interrupt mimics the sched spawn point: the func at arg index 1 is a root.
func Interrupt(cost int, fn func()) { _, _ = cost, fn }

func boot() {
	Interrupt(1, tick)
}

func tick() {}

// isolated is called by nothing and roots nothing.
func isolated() {}

// Post mimics the cluster xport: the continuation at arg index 1 fires on
// the destination shard's engine at a window barrier — a data-path root.
func Post(when int64, fn func()) { _, _ = when, fn }

func ship() {
	Post(5, deliver)
}

func deliver() { sink(2) }
