// Test files are checked syntactically (no type info): the import-name
// fallback must still catch wall-clock calls in _test.go code.
package fake

import "time"

func waitABit() {
	time.Sleep(time.Millisecond) // want "wall-clock time.Sleep"
}
