// Golden input for the simclock analyzer: wall-clock and global-rand calls
// must fire; seeded rand and time.Duration arithmetic must not.
package fake

import (
	"math/rand"
	"time"
	wall "time"
)

func bad() {
	_ = time.Now()                     // want "wall-clock time.Now"
	time.Sleep(time.Second)            // want "wall-clock time.Sleep"
	_ = time.After(time.Second)        // want "wall-clock time.After"
	_ = time.Tick(time.Second)         // want "wall-clock time.Tick"
	_ = time.Since(time.Time{})        // want "wall-clock time.Since"
	_ = wall.Now()                     // want "wall-clock time.Now"
	_ = rand.Intn(4)                   // want "global rand.Intn"
	_ = rand.Float64()                 // want "global rand.Float64"
	rand.Shuffle(0, func(int, int) {}) // want "global rand.Shuffle"
}

func good() {
	rng := rand.New(rand.NewSource(42)) // seeded source: the sanctioned form
	_ = rng.Intn(4)
	_ = rng.Float64()
	d := 5 * time.Millisecond // durations and constants are virtual-clock units
	_ = d.String()
}

// clock shadows nothing: a local value named time is not the package.
type clock struct{}

func (clock) Now() int { return 0 }

func shadowed() {
	time := clock{}
	_ = time.Now() // no finding: resolved to the local variable
}
