package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// NoPanic enforces error discipline on the data path. A Scout path survives
// bad packets: a malformed TCP segment or an oversized fbuf request must
// surface as an error the path (or its creator) handles, never as a crash of
// the whole appliance. Panics are reserved for boot-time wiring and
// programming errors caught at construction: constructors (New*), init
// functions, and must* helpers, which exist precisely to turn errors into
// panics at configuration time (§3.1's configuration step).
//
// A function whose doc comment carries `//scout:assert <why>` is also
// exempt: the marker documents that its panics are fail-loud assertions on
// kernel-corruption invariants (an fbuf freed twice, the virtual clock
// running backwards) where continuing would corrupt state. nopanic-deep
// honors the same marker, so the one annotation answers both the direct and
// the reachable-from-the-data-path rule.
var NoPanic = &Analyzer{
	Name:         "nopanic",
	Doc:          "no panic() in data-path code; return errors (panics allowed in New*/init/must* only)",
	InternalOnly: true,
	Run:          runNoPanic,
}

func panicAllowedFunc(name string) bool {
	lower := strings.ToLower(name)
	return name == "init" ||
		strings.HasPrefix(name, "New") ||
		strings.HasPrefix(lower, "must")
}

func runNoPanic(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if ok && (panicAllowedFunc(fn.Name.Name) || assertAnnotated(fn)) {
				continue
			}
			where := "package-level initializer"
			if ok {
				where = fn.Name.Name
			}
			ast.Inspect(decl, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				id, ok := call.Fun.(*ast.Ident)
				if !ok || id.Name != "panic" {
					return true
				}
				// Make sure it's the builtin, not a shadowing func.
				if pass.Pkg.Info != nil {
					if obj, ok := pass.Pkg.Info.Uses[id]; ok {
						if _, builtin := obj.(*types.Builtin); !builtin {
							return true
						}
					}
				}
				pass.Reportf(call.Pos(), "panic in data-path code (%s); return an error so the path degrades instead of crashing the appliance", where)
				return true
			})
		}
	}
}
