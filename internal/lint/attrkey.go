package lint

import (
	"go/ast"
	"go/token"
	"regexp"
	"strconv"
	"strings"
)

// AttrKey enforces the attribute-name vocabulary (§3.2/§4.1 of the paper:
// attributes are the shared language between path creator, routers, and
// demux — the whole point is that every party agrees on the names). A raw
// "PA_*" string literal bypasses that agreement: a typo silently creates a
// new attribute nobody reads. Every PA_ name must therefore be declared
// exactly once, as a typed attr.Name constant in internal/attr (or an
// appliance-level constant in internal/appliance), and referenced from
// there.
var AttrKey = &Analyzer{
	Name:         "attrkey",
	Doc:          "PA_* attribute names must reference declared attr.Name constants, not raw string literals",
	IncludeTests: true,
	Run:          runAttrKey,
}

var attrNameRe = regexp.MustCompile(`^PA_[A-Z_]+$`)

// attrDeclPkgs are the packages whose const declarations may spell out PA_*
// literals: the vocabulary itself has to be written down somewhere.
func attrDeclPkg(pkgPath, modPath string) bool {
	return pkgPath == modPath+"/internal/attr" || pkgPath == modPath+"/internal/appliance"
}

func runAttrKey(pass *Pass) {
	allowedDecl := attrDeclPkg(pass.Pkg.Path, pass.Pkg.Mod.Path)
	for _, f := range pass.Files {
		// Collect literal positions that sit inside const declarations;
		// those are the declaration sites, legal only in the vocabulary
		// packages.
		constLits := map[token.Pos]bool{}
		ast.Inspect(f, func(n ast.Node) bool {
			decl, ok := n.(*ast.GenDecl)
			if !ok || decl.Tok != token.CONST {
				return true
			}
			ast.Inspect(decl, func(m ast.Node) bool {
				if lit, ok := m.(*ast.BasicLit); ok && lit.Kind == token.STRING {
					constLits[lit.Pos()] = true
				}
				return true
			})
			return false
		})
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				return true
			}
			val, err := strconv.Unquote(lit.Value)
			if err != nil || !attrNameRe.MatchString(val) {
				return true
			}
			if constLits[lit.Pos()] {
				if allowedDecl {
					return true
				}
				pass.Reportf(lit.Pos(), "attribute name %q declared outside the vocabulary packages; declare it as an attr.Name constant in internal/attr", val)
				return true
			}
			pass.Reportf(lit.Pos(), "raw attribute name %q; reference the declared attr.Name constant (%s)", val, suggestAttrConst(val))
			return true
		})
	}
}

// suggestAttrConst turns PA_FOO_BAR into the conventional constant spelling
// attr.FooBar, purely as a hint in the message.
func suggestAttrConst(name string) string {
	parts := strings.Split(strings.TrimPrefix(name, "PA_"), "_")
	var b strings.Builder
	b.WriteString("attr.")
	for _, p := range parts {
		if p == "" {
			continue
		}
		b.WriteString(p[:1] + strings.ToLower(p[1:]))
	}
	return b.String()
}
