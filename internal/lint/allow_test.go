package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeAllow(t *testing.T, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), ".scoutlint-allow")
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestAllowMissingFileIsEmpty(t *testing.T) {
	al, err := ParseAllowFile(filepath.Join(t.TempDir(), "nope"))
	if err != nil || len(al.Entries) != 0 {
		t.Fatalf("missing file: entries=%d err=%v", len(al.Entries), err)
	}
}

func TestAllowRejectsUncommentedEntries(t *testing.T) {
	_, err := ParseAllowFile(writeAllow(t, "nopanic internal/foo.go\n"))
	if err == nil || !strings.Contains(err.Error(), "no justifying comment") {
		t.Fatalf("uncommented entry accepted: %v", err)
	}
}

func TestAllowCommentCoversBlockUntilBlankLine(t *testing.T) {
	_, err := ParseAllowFile(writeAllow(t,
		"# one comment for two entries\nnopanic a.go\nnopanic b.go\n\nnopanic c.go\n"))
	if err == nil || !strings.Contains(err.Error(), "c.go") {
		t.Fatalf("blank line should end the justified block: %v", err)
	}
}

func TestAllowMatching(t *testing.T) {
	al, err := ParseAllowFile(writeAllow(t, strings.Join([]string{
		"nopanic internal/exp/ # fail-fast experiment drivers",
		"nopanic internal/msg/msg.go (Free) # ownership discipline",
		"* internal/legacy.go # grandfathered wholesale",
		"",
	}, "\n")))
	if err != nil {
		t.Fatal(err)
	}
	diags := []Diagnostic{
		{File: "internal/exp/edf.go", Line: 1, Rule: "nopanic", Msg: "panic in data-path code (run)"},
		{File: "internal/msg/msg.go", Line: 2, Rule: "nopanic", Msg: "panic in data-path code (Free)"},
		{File: "internal/msg/msg.go", Line: 3, Rule: "nopanic", Msg: "panic in data-path code (Push)"},
		{File: "internal/legacy.go", Line: 4, Rule: "simclock", Msg: "wall-clock time.Now"},
		{File: "internal/expanded.go", Line: 5, Rule: "nopanic", Msg: "panic in data-path code (x)"},
	}
	kept := al.Filter(diags)
	if len(kept) != 2 {
		t.Fatalf("kept %d diagnostics, want 2: %v", len(kept), kept)
	}
	// The substring-narrowed entry must not cover (Push); the directory
	// prefix must not glob "internal/expanded.go".
	if kept[0].Line != 3 || kept[1].Line != 5 {
		t.Fatalf("wrong diagnostics kept: %v", kept)
	}
	if stale := al.Stale(); len(stale) != 0 {
		t.Fatalf("all entries were used, got stale: %v", stale)
	}
}

func TestAllowStale(t *testing.T) {
	al, err := ParseAllowFile(writeAllow(t, "nopanic gone.go # fixed long ago\n"))
	if err != nil {
		t.Fatal(err)
	}
	al.Filter(nil)
	if stale := al.Stale(); len(stale) != 1 || stale[0].Path != "gone.go" {
		t.Fatalf("stale detection failed: %v", stale)
	}
}
