package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// This file holds the interprocedural upgrades of the per-function
// analyzers: a panic, a callback-under-lock, or a dropped error three calls
// below a Deliver is caught through the data-path call graph, not just one
// literally inside it.

// NoPanicDeep extends nopanic across calls: the base analyzer bans panics
// in data-path *bodies* but deliberately allows them in constructors
// (New*/init/must*) and in the functions the allowlist documents as
// boot-time wiring. Those exemptions are sound only while such functions
// stay off the data path — a Deliver chain that reaches one turns a
// programming-error assertion into a remotely triggerable crash. NoPanicDeep
// walks the graph and flags every reachable panic whose function is not
// explicitly marked `//scout:assert <why>`: the marker is the documented
// claim that the panic guards a corrupted-kernel invariant (fbuf ownership,
// a clock running backwards) that must fail loud even mid-path.
var NoPanicDeep = &Analyzer{
	Name:       "nopanic-deep",
	Doc:        "no panic reachable from the data path unless the function is marked //scout:assert",
	NeedsTypes: true,
	Run:        runNoPanicDeep,
}

func runNoPanicDeep(pass *Pass) {
	g := pass.Pkg.Mod.Graph()
	for _, n := range g.NodesIn(pass.Pkg) {
		if !n.Reachable() || assertAnnotated(n.Decl) {
			continue
		}
		n.inspectOwn(func(x ast.Node) bool {
			call, ok := x.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok || id.Name != "panic" {
				return true
			}
			if obj, ok := pass.Pkg.Info.Uses[id]; ok {
				if _, builtin := obj.(*types.Builtin); !builtin {
					return true
				}
			}
			pass.ReportfChain(call.Pos(), g.Chain(n),
				"panic in %s is reachable from the data path; return an error, or mark the function //scout:assert <why> if this guards kernel-corruption invariants", n.Name)
			return true
		})
	}
}

// assertAnnotated reports whether the declaration's doc comment carries
// `//scout:assert <why>` with a non-empty reason. The base nopanic analyzer
// honors the same marker, so one declaration-site decision covers both the
// direct and the interprocedural rule.
func assertAnnotated(decl *ast.FuncDecl) bool {
	if decl == nil || decl.Doc == nil {
		return false
	}
	for _, c := range decl.Doc.List {
		idx := strings.Index(c.Text, "scout:assert")
		if idx >= 0 && strings.TrimSpace(c.Text[idx+len("scout:assert"):]) != "" {
			return true
		}
	}
	return false
}

// LockSafeDeep extends locksafe across calls: the base analyzer flags a
// function-typed value invoked between Lock and Unlock in the same body;
// this one flags a *named* call made under a lock when the callee — through
// any chain of static and interface edges — ends up invoking a callback.
// Handing control to user code with a mutex held is the same reentrancy
// deadlock whether the callback is one frame or five frames down; the fused
// delivery chain makes the distant case easy to create (DeliverNext is an
// innocent-looking method that immediately calls a Deliver function value).
var LockSafeDeep = &Analyzer{
	Name:         "locksafe-deep",
	Doc:          "no call that transitively invokes a callback while a mutex is held",
	InternalOnly: true,
	NeedsTypes:   true,
	Run:          runLockSafeDeep,
}

func runLockSafeDeep(pass *Pass) {
	g := pass.Pkg.Mod.Graph()
	info := pass.Pkg.Info
	for _, n := range g.NodesIn(pass.Pkg) {
		windows := collectLockWindows(info, n)
		if len(windows.windows) == 0 {
			continue
		}
		n.inspectOwn(func(x ast.Node) bool {
			call, ok := x.(*ast.CallExpr)
			if !ok || !windows.covers(call.Pos()) {
				return true
			}
			if _, _, isMutex := mutexMethod(info, call); isMutex {
				return true
			}
			callee := calleeFunc(info, ast.Unparen(call.Fun))
			if callee == nil {
				return true // func-value call: base locksafe's finding
			}
			target := g.byFn[callee]
			if target == nil || !invokesCallback(target) {
				return true
			}
			pass.ReportfChain(call.Pos(), callbackTrail(g, target),
				"%s called while a mutex is held eventually invokes a callback (via %s); release the lock before calling into the delivery chain", callee.Name(), trailSummary(target))
			return true
		})
	}
}

// invokesCallback reports whether the node, or anything it can reach over
// static and interface edges, calls a function-typed value. Value edges are
// excluded from propagation: the node *making* a value call is already
// counted by cbDirect, and following the resolved values would double-count
// the same hand-off.
func invokesCallback(n *GraphNode) bool {
	switch n.cbState {
	case 1: // in progress: assume false; a cycle cannot add new callbacks
		return false
	case 2:
		return n.cbResult
	}
	n.cbState = 1
	result := n.cbDirect
	if !result {
		for _, e := range n.Edges {
			if e.Kind == EdgeValue {
				continue
			}
			if invokesCallback(e.To) {
				result = true
				n.cbVia = e.To
				n.cbPos = e.Pos
				break
			}
		}
	}
	n.cbState = 2
	n.cbResult = result
	return result
}

// trailSummary names the function where the callback invocation happens.
func trailSummary(n *GraphNode) string {
	at := n
	for at.cbVia != nil {
		at = at.cbVia
	}
	return at.Name
}

// callbackTrail renders the call chain from the locked call site down to the
// callback invocation, for `-why`.
func callbackTrail(g *CallGraph, n *GraphNode) []string {
	var out []string
	out = append(out, fmt.Sprintf("%s [called under lock]", n.Name))
	for at := n; at.cbVia != nil; at = at.cbVia {
		out = append(out, fmt.Sprintf("-> %s (%s)", at.cbVia.Name, g.pos(at.cbPos)))
	}
	out = append(out, "-> <callback invocation>")
	return out
}

// ErrCheckDeep extends errcheck-lite onto the data path: the base analyzer
// permits explicit discards (`_ = f()`) because they are greppable; on a
// call chain a Deliver can reach, even an explicit discard is a dropped path
// invariant unless the code says why. The rule is the one ServeIncoming
// already follows: a blank-discarded error in data-path-reachable code must
// carry a justifying comment on its line or the line above.
var ErrCheckDeep = &Analyzer{
	Name:       "errcheck-deep",
	Doc:        "blank-discarded errors on data-path call chains must carry a justifying comment",
	NeedsTypes: true,
	Run:        runErrCheckDeep,
}

func runErrCheckDeep(pass *Pass) {
	g := pass.Pkg.Mod.Graph()
	info := pass.Pkg.Info
	for _, n := range g.NodesIn(pass.Pkg) {
		if !n.Reachable() {
			continue
		}
		n.inspectOwn(func(x ast.Node) bool {
			st, ok := x.(*ast.AssignStmt)
			if !ok || (st.Tok != token.ASSIGN && st.Tok != token.DEFINE) {
				return true
			}
			for i, lhs := range st.Lhs {
				if !blankIdent(lhs) || !discardsError(info, st, i) {
					continue
				}
				if commentedLine(pass, st.Pos()) {
					continue
				}
				pass.ReportfChain(st.Pos(), g.Chain(n),
					"error blank-discarded on a data-path call chain in %s; handle it, or justify the discard with a comment on this line", n.Name)
				break
			}
			return true
		})
	}
}

// discardsError reports whether position i of the assignment receives a
// value of (exactly) type error.
func discardsError(info *types.Info, st *ast.AssignStmt, i int) bool {
	if len(st.Rhs) == 1 && len(st.Lhs) > 1 {
		tv, ok := info.Types[st.Rhs[0]]
		if !ok {
			return false
		}
		tuple, ok := tv.Type.(*types.Tuple)
		if !ok || i >= tuple.Len() {
			return false
		}
		return isErrorType(tuple.At(i).Type())
	}
	if i < len(st.Rhs) {
		if tv, ok := info.Types[st.Rhs[i]]; ok && tv.Type != nil {
			return isErrorType(tv.Type)
		}
	}
	return false
}

// commentedLine reports whether any comment ends on the statement's line or
// the line above it.
func commentedLine(pass *Pass, pos token.Pos) bool {
	fset := pass.Pkg.Mod.Fset
	line := fset.Position(pos).Line
	f := fileAt(pass, pos)
	if f == nil {
		return false
	}
	for _, cg := range f.Comments {
		cl := fset.Position(cg.End()).Line
		if cl == line || cl == line-1 {
			return true
		}
	}
	return false
}
