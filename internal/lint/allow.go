package lint

import (
	"fmt"
	"os"
	"strings"
)

// AllowEntry is one suppression from a .scoutlint-allow file. A finding is
// suppressed when the rule matches (or the entry's rule is "*"), the file
// matches (exact path, or prefix when the entry ends in "/"), and — if the
// entry carries one — the message substring matches.
type AllowEntry struct {
	Rule string
	Path string
	Sub  string // optional substring the message must contain
	Line int    // line in the allowlist file, for stale reporting
	used bool
}

// Allowlist is a parsed .scoutlint-allow file.
type Allowlist struct {
	File    string
	Entries []*AllowEntry
}

// ParseAllowFile reads path; a missing file yields an empty allowlist.
// Format, one suppression per line:
//
//	<rule> <path>[ <message substring>]   # trailing comment
//
// Lines starting with # and blank lines are ignored. <rule> may be "*".
// <path> matching a directory must end with "/" and suppresses the whole
// subtree. Every entry must be justified with a comment: inline, or a
// comment line above the entry's contiguous block (a blank line ends a
// block) — scoutlint rejects bare entries so the allowlist stays a
// documented set of decisions, not a mute button.
func ParseAllowFile(path string) (*Allowlist, error) {
	al := &Allowlist{File: path}
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return al, nil
		}
		return nil, err
	}
	prevComment := false
	for i, line := range strings.Split(string(data), "\n") {
		full := strings.TrimSpace(line)
		if full == "" {
			prevComment = false
			continue
		}
		if strings.HasPrefix(full, "#") {
			prevComment = true
			continue
		}
		entryText := full
		hasInline := false
		if idx := strings.Index(full, " #"); idx >= 0 {
			entryText = strings.TrimSpace(full[:idx])
			hasInline = true
		}
		fields := strings.SplitN(entryText, " ", 3)
		if len(fields) < 2 {
			return nil, fmt.Errorf("%s:%d: malformed entry %q (want: <rule> <path> [substring])", path, i+1, full)
		}
		if !hasInline && !prevComment {
			return nil, fmt.Errorf("%s:%d: entry %q has no justifying comment", path, i+1, entryText)
		}
		e := &AllowEntry{Rule: fields[0], Path: fields[1], Line: i + 1}
		if len(fields) == 3 {
			e.Sub = strings.TrimSpace(fields[2])
		}
		al.Entries = append(al.Entries, e)
		// prevComment stays set: one comment justifies the contiguous
		// block of entries under it (a blank line ends the block).
	}
	return al, nil
}

func (e *AllowEntry) matches(d Diagnostic) bool {
	if e.Rule != "*" && e.Rule != d.Rule {
		return false
	}
	if strings.HasSuffix(e.Path, "/") {
		if !strings.HasPrefix(d.File, e.Path) {
			return false
		}
	} else if e.Path != d.File {
		return false
	}
	return e.Sub == "" || strings.Contains(d.Msg, e.Sub)
}

// Filter splits diags into kept (unsuppressed) findings and marks matching
// entries as used.
func (al *Allowlist) Filter(diags []Diagnostic) (kept []Diagnostic) {
	for _, d := range diags {
		suppressed := false
		for _, e := range al.Entries {
			if e.matches(d) {
				e.used = true
				suppressed = true
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	return kept
}

// Stale returns entries that suppressed nothing in the last Filter call;
// they indicate the violation was fixed and the entry should be deleted.
func (al *Allowlist) Stale() []*AllowEntry {
	var stale []*AllowEntry
	for _, e := range al.Entries {
		if !e.used {
			stale = append(stale, e)
		}
	}
	return stale
}

// UnknownRules returns entries whose rule names no analyzer in the suite
// (and is not "*"): typos that would otherwise sit in the file forever,
// silently suppressing nothing — or, worse, something after a rename.
func (al *Allowlist) UnknownRules(analyzers []*Analyzer) []*AllowEntry {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	var unknown []*AllowEntry
	for _, e := range al.Entries {
		if e.Rule != "*" && !known[e.Rule] {
			unknown = append(unknown, e)
		}
	}
	return unknown
}
