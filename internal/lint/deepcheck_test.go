package lint

import (
	"strings"
	"testing"
)

// TestErrCheckDeep cannot use the // want golden harness: any comment on a
// discard's line (or the line above) is itself the justification the
// analyzer accepts, so the positives must stay comment-free. Findings are
// asserted per function instead.
func TestErrCheckDeep(t *testing.T) {
	mod := loadTestPackage(t, "testdata/errcheckdeep", "scout/internal/fake")
	diags := RunModule(mod, []*Analyzer{ErrCheckDeep})

	perFunc := map[string]int{}
	for _, d := range diags {
		switch {
		case strings.Contains(d.Msg, "in fake.Inject;"):
			perFunc["Inject"]++
		case strings.Contains(d.Msg, "in fake.relay;"):
			perFunc["relay"]++
		default:
			t.Errorf("finding in unexpected function: %s", d)
		}
		if len(d.Chain) == 0 || !strings.Contains(d.Chain[0], "[root:") {
			t.Errorf("finding lacks a root-anchored chain: %s %v", d, d.Chain)
		}
	}
	if perFunc["Inject"] != 2 {
		t.Errorf("Inject: %d bare discards flagged, want 2 (the justified ones must pass)", perFunc["Inject"])
	}
	if perFunc["relay"] != 1 {
		t.Errorf("relay: %d bare discards flagged, want 1 (offPath is unreachable)", perFunc["relay"])
	}
}

// TestChainRendering: the interprocedural analyzers must attach the
// root-to-finding call chain `scoutlint -why` prints.
func TestChainRendering(t *testing.T) {
	mod := loadTestPackage(t, "testdata/detlint", "scout/internal/fake")
	diags := RunModule(mod, []*Analyzer{DetLint})
	var helperChain []string
	for _, d := range diags {
		if strings.Contains(d.Msg, "data-path") && d.Line > 45 { // the loop inside helper
			helperChain = d.Chain
		}
	}
	if len(helperChain) != 2 {
		t.Fatalf("helper finding chain = %v, want root + one hop", helperChain)
	}
	if !strings.HasPrefix(helperChain[0], "fake.Inject [root: delivery entry point") {
		t.Errorf("chain root frame = %q", helperChain[0])
	}
	if !strings.HasPrefix(helperChain[1], "-> fake.helper (det.go:") {
		t.Errorf("chain hop frame = %q", helperChain[1])
	}
}

// TestAllowlistUnknownRules: entries naming rules no analyzer has are
// flagged so typos cannot silently suppress nothing (or the wrong thing).
func TestAllowlistUnknownRules(t *testing.T) {
	al := &Allowlist{Entries: []*AllowEntry{
		{Rule: "nopanic", Path: "internal/x.go", Line: 1},
		{Rule: "*", Path: "internal/y.go", Line: 2},
		{Rule: "nopanick", Path: "internal/z.go", Line: 3},
	}}
	unknown := al.UnknownRules(All())
	if len(unknown) != 1 || unknown[0].Rule != "nopanick" {
		t.Fatalf("UnknownRules = %+v, want exactly the nopanick entry", unknown)
	}
}
