# Developer entry points. CI (.github/workflows/ci.yml) runs the same steps
# as `make check`, in the same order, then the tracegate/chaosgate
# determinism gates and the machine-readable bench artifact.

GO ?= go

# Bench knobs: CI uses BENCHTIME=1x for a fast, non-noisy artifact; local
# runs can leave the default measurement time. BENCHCOUNT repeats each
# benchmark; benchjson keeps the best observation per metric (min cost,
# max fps), the standard defence against scheduler/GC noise on shared
# machines. BENCHBASE is the committed baseline benchdiff compares against.
BENCHTIME ?= 1s
BENCHCOUNT ?= 5
BENCHOUT ?= BENCH_pr10.json
BENCHBASE ?= BENCH_pr7.json

.PHONY: check build vet test race lint lintgraph bench benchdiff benchsmoke tracegate chaosgate mpgate miggate scalegate

check: build vet test race lint mpgate miggate scalegate

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# lint runs the full 12-analyzer suite with per-analyzer wall time on
# stderr, so a slow analyzer is visible the day it regresses.
lint:
	$(GO) run ./cmd/scoutlint -timing ./...

# lintgraph dumps the data-path call graph (roots + resolved edges) in its
# stable text form; CI uploads it as an artifact so reviewers can diff how
# the data-path surface changed.
LINTGRAPH ?= callgraph.txt
lintgraph:
	$(GO) run ./cmd/scoutlint -graph $(LINTGRAPH) ./...

# bench emits the machine-readable perf trajectory: raw `go test -bench`
# output is kept in BENCH_raw.txt and parsed into $(BENCHOUT) by
# cmd/benchjson. Two steps (not a pipe) so a bench failure fails the target.
bench:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime $(BENCHTIME) -count $(BENCHCOUNT) . ./internal/pathtrace ./internal/sim > BENCH_raw.txt
	$(GO) run ./cmd/benchjson -in BENCH_raw.txt -out $(BENCHOUT)

# benchdiff gates the perf trajectory: the committed candidate artifact must
# hold its thresholds against the committed baseline (allocs strictly, ns/op
# within ratio when CPUs match, fps no regression, and the flow cache's
# hit-vs-walk separation within the candidate itself).
benchdiff:
	$(GO) run ./cmd/benchjson -base $(BENCHBASE) -new $(BENCHOUT)

# benchsmoke is the CI-fast subset: one iteration of the wall-clock micro
# benchmarks (E1–E3 + cold miss) to prove they still run; timings at
# -benchtime=1x are indicative only.
benchsmoke:
	$(GO) test -run '^$$' -bench 'BenchmarkE1|BenchmarkE2|BenchmarkE3' -benchmem -benchtime 1x .

# tracegate is the determinism regression gate: two same-seed E10 smoke runs
# must export byte-identical traces and metrics.
tracegate:
	@dir=$$(mktemp -d) && \
	$(GO) run ./cmd/mpegbench -run e10 -e10-smoke -trace $$dir/a.json -metrics $$dir/am.json >/dev/null && \
	$(GO) run ./cmd/mpegbench -run e10 -e10-smoke -trace $$dir/b.json -metrics $$dir/bm.json >/dev/null && \
	cmp $$dir/a.json $$dir/b.json && cmp $$dir/am.json $$dir/bm.json && \
	echo "tracegate: E10 exports byte-identical across same-seed runs"; \
	rc=$$?; rm -rf $$dir; exit $$rc

# mpgate is the multipath determinism gate: two same-seed E13 smoke runs
# (the full k x policy grid with a mid-run link fault) must print
# byte-identical reports.
mpgate:
	@dir=$$(mktemp -d) && \
	$(GO) run ./cmd/mpegbench -run e13 -e13-smoke | grep -v wall-clock > $$dir/a.txt && \
	$(GO) run ./cmd/mpegbench -run e13 -e13-smoke | grep -v wall-clock > $$dir/b.txt && \
	cmp $$dir/a.txt $$dir/b.txt && \
	echo "mpgate: E13 multipath report byte-identical across same-seed runs"; \
	rc=$$?; rm -rf $$dir; exit $$rc

# miggate is the live-migration gate: two same-seed E14 smoke runs (link
# killed mid-clip, path respliced onto the spare NIC) must print
# byte-identical reports, and the run itself must pass E14's internal gate
# (one migration within budget, zero incomplete frames, clean audits —
# mpegbench exits non-zero otherwise).
miggate:
	@dir=$$(mktemp -d) && \
	$(GO) run ./cmd/mpegbench -run e14 -e14-smoke | grep -v wall-clock > $$dir/a.txt && \
	$(GO) run ./cmd/mpegbench -run e14 -e14-smoke | grep -v wall-clock > $$dir/b.txt && \
	cmp $$dir/a.txt $$dir/b.txt && \
	echo "miggate: E14 migration report byte-identical across same-seed runs"; \
	rc=$$?; rm -rf $$dir; exit $$rc

# scalegate is the sharded-kernel determinism gate, two layers deep: each
# E15 smoke run internally requires identical digests/totals/event counts
# across shard counts (mpegbench exits non-zero on divergence), and two
# same-seed runs must print byte-identical reports (wall-clock rate lines
# excluded — they legitimately vary).
scalegate:
	@dir=$$(mktemp -d) && \
	$(GO) run ./cmd/mpegbench -run e15 -e15-smoke | grep -v wall-clock > $$dir/a.txt && \
	$(GO) run ./cmd/mpegbench -run e15 -e15-smoke | grep -v wall-clock > $$dir/b.txt && \
	cmp $$dir/a.txt $$dir/b.txt && \
	echo "scalegate: E15 sharded report byte-identical across same-seed runs"; \
	rc=$$?; rm -rf $$dir; exit $$rc

# chaosgate is the overload-survival gate: the seeded chaos suite (fault
# plane, watchdog, degradation, lifecycle audits) must be race-clean, and two
# same-seed E11 smoke runs must print byte-identical reports.
chaosgate:
	$(GO) test -race ./internal/chaos ./internal/exp -run 'Chaos|E11|Inflate|Stall|Squeeze|Poison|Audit|Destroy'
	@dir=$$(mktemp -d) && \
	$(GO) run ./cmd/mpegbench -run overload -overload-smoke | grep -v wall-clock > $$dir/a.txt && \
	$(GO) run ./cmd/mpegbench -run overload -overload-smoke | grep -v wall-clock > $$dir/b.txt && \
	cmp $$dir/a.txt $$dir/b.txt && \
	echo "chaosgate: E11 overload report byte-identical across same-seed runs"; \
	rc=$$?; rm -rf $$dir; exit $$rc
