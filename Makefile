# Developer entry points. CI (.github/workflows/ci.yml) runs the same five
# steps as `make check`, in the same order.

GO ?= go

.PHONY: check build vet test race lint bench

check: build vet test race lint

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

lint:
	$(GO) run ./cmd/scoutlint ./...

bench:
	$(GO) test -bench=. -benchmem .
