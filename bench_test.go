// Benchmarks regenerating every data artifact of the paper's evaluation —
// one benchmark (family) per table or in-text experiment, per the index in
// DESIGN.md. The scheduling experiments run on the virtual clock and report
// their results as benchmark metrics; the §3.6 microbenchmarks (E1–E3) are
// genuine wall-clock measurements.
//
// Run: go test -bench=. -benchmem
package scout_test

import (
	"testing"
	"time"

	"scout/internal/admission"
	"scout/internal/exp"
	"scout/internal/fbuf"
	"scout/internal/mpeg"
	"scout/internal/msg"
	"scout/internal/proto/eth"
)

// --- E1: §3.6 path creation (paper: ≈200µs on a 300MHz Alpha) ---

func BenchmarkE1_PathCreate(b *testing.B) {
	k, err := exp.NewMicroKernel()
	if err != nil {
		b.Fatal(err)
	}
	testR, _ := k.Graph.Router("TEST")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := k.Graph.CreatePath(testR, exp.TestPathAttrs(10000+i%20000))
		if err != nil {
			b.Fatal(err)
		}
		p.Delete()
	}
}

// --- E2: §3.6 packet classification (paper: < 5µs per UDP packet) ---

func BenchmarkE2_Demux(b *testing.B) {
	k, err := exp.NewMicroKernel()
	if err != nil {
		b.Fatal(err)
	}
	testR, _ := k.Graph.Router("TEST")
	if _, err := k.Graph.CreatePath(testR, exp.TestPathAttrs(9300)); err != nil {
		b.Fatal(err)
	}
	m := exp.BuildVideoFrame(k, 9300, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := k.ETH.Classify(m); err != nil {
			b.Fatal(err)
		}
	}
}

// The device-edge flow cache makes BenchmarkE2_Demux a cache-hit
// measurement (Classify consults the cache first); this is the companion
// cold-miss cost — the full hop-by-hop walk the cache short-circuits. The
// fast-path target is hit ≤ walk/3 (see `make benchdiff`).
func BenchmarkE2_Demux_ColdMiss(b *testing.B) {
	k, err := exp.NewMicroKernel()
	if err != nil {
		b.Fatal(err)
	}
	testR, _ := k.Graph.Router("TEST")
	if _, err := k.Graph.CreatePath(testR, exp.TestPathAttrs(9300)); err != nil {
		b.Fatal(err)
	}
	m := exp.BuildVideoFrame(k, 9300, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := k.ETH.ClassifyUncached(m); err != nil {
			b.Fatal(err)
		}
	}
}

// The burst companion: amortized per-packet classification cost when the
// device hands the classifier a whole same-flow burst and the in-burst memo
// short-circuits even the flow-cache lookup for frames 2..N. The burst
// itself is built once through the burst allocation path (fbuf.GetBurst over
// a msg.Arena). Reported as wall-ns/pkt (amortized, target < 20) and pkts/s
// alongside the per-op ns, which covers the whole 64-frame burst.
func BenchmarkE2_Demux_Burst(b *testing.B) {
	k, err := exp.NewMicroKernel()
	if err != nil {
		b.Fatal(err)
	}
	testR, _ := k.Graph.Router("TEST")
	if _, err := k.Graph.CreatePath(testR, exp.TestPathAttrs(9300)); err != nil {
		b.Fatal(err)
	}
	template := exp.BuildVideoFrame(k, 9300, 1024)
	const burstLen = 64
	pool := fbuf.NewPool(template.Len(), 0, burstLen, burstLen)
	var arena msg.Arena
	burst, err := pool.GetBurst(&arena, make([]*msg.Msg, 0, burstLen), burstLen, template.Len())
	if err != nil {
		b.Fatal(err)
	}
	for _, m := range burst {
		copy(m.Bytes(), template.Bytes())
	}
	cls := make([]eth.BurstClass, 0, burstLen)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cls = k.ETH.ClassifyBurst(burst, cls[:0])
		if cls[0].Err != nil {
			b.Fatal(cls[0].Err)
		}
	}
	b.StopTimer()
	pkts := float64(b.N) * burstLen
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/pkts, "wall-ns/pkt")
	b.ReportMetric(pkts/b.Elapsed().Seconds(), "pkts/s")
}

// --- E3: §3.6 object sizes (paper: path ≈300B, stage ≈150B) ---

func BenchmarkE3_Footprint(b *testing.B) {
	k, err := exp.NewMicroKernel()
	if err != nil {
		b.Fatal(err)
	}
	f, err := exp.MeasureFootprint(k)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		_ = f
	}
	b.ReportMetric(float64(f.PathBytes), "path-bytes")
	b.ReportMetric(float64(f.StageBytes), "stage-bytes")
	b.ReportMetric(float64(f.PathLen), "stages")
}

// --- E4: Table 1 — max decode rate per clip, Scout vs baseline ---

func benchTable1(b *testing.B, clip mpeg.ClipSpec, scout bool) {
	var fps float64
	for i := 0; i < b.N; i++ {
		if scout {
			fps = exp.ScoutMaxRate(clip, false)
		} else {
			fps = exp.BaselineMaxRate(clip)
		}
	}
	b.ReportMetric(fps, "fps")
	paper := exp.PaperTable1[clip.Name]
	if scout {
		b.ReportMetric(paper[0], "paper-fps")
	} else {
		b.ReportMetric(paper[1], "paper-fps")
	}
}

func BenchmarkE4_Table1_Flower_Scout(b *testing.B)        { benchTable1(b, mpeg.Flower, true) }
func BenchmarkE4_Table1_Flower_Linux(b *testing.B)        { benchTable1(b, mpeg.Flower, false) }
func BenchmarkE4_Table1_Neptune_Scout(b *testing.B)       { benchTable1(b, mpeg.Neptune, true) }
func BenchmarkE4_Table1_Neptune_Linux(b *testing.B)       { benchTable1(b, mpeg.Neptune, false) }
func BenchmarkE4_Table1_RedsNightmare_Scout(b *testing.B) { benchTable1(b, mpeg.RedsNightmare, true) }
func BenchmarkE4_Table1_RedsNightmare_Linux(b *testing.B) { benchTable1(b, mpeg.RedsNightmare, false) }
func BenchmarkE4_Table1_Canyon_Scout(b *testing.B)        { benchTable1(b, mpeg.Canyon, true) }
func BenchmarkE4_Table1_Canyon_Linux(b *testing.B)        { benchTable1(b, mpeg.Canyon, false) }

// --- E5: Table 2 — Neptune under ping -f flood ---

func BenchmarkE5_Table2(b *testing.B) {
	var r exp.Table2Result
	for i := 0; i < b.N; i++ {
		r = exp.RunTable2()
	}
	ds, db := r.Delta()
	b.ReportMetric(r.ScoutUnloaded, "scout-unloaded-fps")
	b.ReportMetric(r.ScoutLoaded, "scout-loaded-fps")
	b.ReportMetric(ds, "scout-delta-%")
	b.ReportMetric(r.BaselineUnloaded, "linux-unloaded-fps")
	b.ReportMetric(r.BaselineLoaded, "linux-loaded-fps")
	b.ReportMetric(db, "linux-delta-%")
}

// --- E6: §4.3 — EDF vs single-priority RR deadline misses ---

func benchEDF(b *testing.B, sched string, qlen int) {
	var row exp.EDFRow
	cfg := exp.EDFConfig{NeptuneFrames: 400, CanyonFrames: 600}
	for i := 0; i < b.N; i++ {
		rows := exp.RunEDF(cfg, []string{sched}, []int{qlen})
		row = rows[0]
	}
	b.ReportMetric(float64(row.NeptuneMissed), "neptune-missed")
	b.ReportMetric(float64(row.NeptuneTotal), "neptune-total")
}

func BenchmarkE6_EDF_Queue128(b *testing.B) { benchEDF(b, "edf", 128) }
func BenchmarkE6_RR_Queue16(b *testing.B)   { benchEDF(b, "rr", 16) }
func BenchmarkE6_RR_Queue128(b *testing.B)  { benchEDF(b, "rr", 128) }
func BenchmarkE6_RR_Queue512(b *testing.B)  { benchEDF(b, "rr", 512) }

// --- E7: §4.4 — admission model fit and early discard ---

func BenchmarkE7_Admission(b *testing.B) {
	var r exp.AdmissionResult
	for i := 0; i < b.N; i++ {
		r = exp.RunAdmission(300)
	}
	b.ReportMetric(r.R2, "R2")
	b.ReportMetric(r.SlopeNsBit, "ns-per-bit")
	b.ReportMetric(r.SavedFrac*100, "early-drop-saved-%")
}

// --- E8: §4.2 — input queue sizing (2×RTT×BW rule) ---

func BenchmarkE8_QueueSizing(b *testing.B) {
	rtt := 20 * time.Millisecond
	var rows []exp.QueueRow
	for i := 0; i < b.N; i++ {
		rows = exp.RunQueueSizing([]time.Duration{rtt}, []int{2, 8, 32})
	}
	b.ReportMetric(rows[0].PktPerSec, "pps-qlen2")
	b.ReportMetric(rows[1].PktPerSec, "pps-qlen8")
	b.ReportMetric(rows[2].PktPerSec, "pps-qlen32")
	b.ReportMetric(float64(rows[0].Predicted), "predicted-knee")
}

// --- Ablations (DESIGN.md) ---

// ILP transformation on/off: per-packet path CPU.
func BenchmarkAblation_ILP_On(b *testing.B) {
	var d time.Duration
	for i := 0; i < b.N; i++ {
		d = exp.RunILP(true, 60)
	}
	b.ReportMetric(float64(d.Nanoseconds()), "ns-per-packet")
}

func BenchmarkAblation_ILP_Off(b *testing.B) {
	var d time.Duration
	for i := 0; i < b.N; i++ {
		d = exp.RunILP(false, 60)
	}
	b.ReportMetric(float64(d.Nanoseconds()), "ns-per-packet")
}

// fbuf pools vs per-hop copies: the data-path buffer management choice.
func BenchmarkAblation_Fbuf(b *testing.B) {
	pool := fbuf.NewPool(1500, 64, 8, 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m, err := pool.Get(1400)
		if err != nil {
			b.Fatal(err)
		}
		m.Push(42)
		m.Pop(42)
		m.Free()
	}
}

func BenchmarkAblation_PerHopCopy(b *testing.B) {
	src := make([]byte, 1400)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m := msg.NewWithHeadroom(64, 1400)
		if err := m.CopyIn(src); err != nil {
			b.Fatal(err)
		}
		out := m.CopyOut() // the per-layer copy Scout's paths avoid
		_ = out
		m.Free()
	}
}

// Bottleneck-queue selection for the EDF deadline (§4.3, last paragraph).
func BenchmarkAblation_Deadline_Out(b *testing.B) { benchDeadline(b, "out") }
func BenchmarkAblation_Deadline_Min(b *testing.B) { benchDeadline(b, "min") }

func benchDeadline(b *testing.B, mode string) {
	var row exp.EDFRow
	for i := 0; i < b.N; i++ {
		row = exp.RunDeadlineMode(mode, 300, 400)
	}
	b.ReportMetric(float64(row.NeptuneMissed), "neptune-missed")
}

// --- Codec substrate: real decode/dither throughput on this machine ---

func BenchmarkCodec_RealDecode(b *testing.B) {
	scene := mpeg.NewScene(mpeg.SceneConfig{W: 160, H: 112, Detail: 0.5, Motion: 1, Objects: 2, Seed: 10})
	enc, _ := mpeg.NewEncoder(mpeg.EncoderConfig{W: 160, H: 112, GOP: 15, QScale: 3, SearchRange: 4})
	var pkts [][]byte
	frames := 15
	for i := 0; i < frames; i++ {
		ps, _ := enc.Encode(scene.Frame(i))
		for _, p := range ps {
			pkts = append(pkts, p.Marshal())
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dec := mpeg.NewDecoder()
		for _, pk := range pkts {
			if _, err := dec.DecodePacket(pk); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(b.N*frames)/b.Elapsed().Seconds(), "frames/s")
}

// §4.4's empirical claim on the REAL codec: wall-clock decode time
// correlates with encoded frame size. (The virtual-time experiments charge
// a linear model by construction; this measures the actual decoder.)
func BenchmarkCodec_BitsCPUCorrelation(b *testing.B) {
	// Frames of widely varying complexity → widely varying sizes.
	var pkts [][]*mpeg.Packet
	var sizes []float64
	for _, detail := range []float64{0.05, 0.2, 0.4, 0.6, 0.8, 1.0} {
		scene := mpeg.NewScene(mpeg.SceneConfig{W: 160, H: 112, Detail: detail, Motion: 1, Objects: 2, Seed: 3})
		enc, _ := mpeg.NewEncoder(mpeg.EncoderConfig{W: 160, H: 112, GOP: 1, QScale: 2})
		ps, _ := enc.Encode(scene.Frame(0))
		bits := 0
		for _, p := range ps {
			bits += len(p.Data) * 8
		}
		pkts = append(pkts, ps)
		sizes = append(sizes, float64(bits))
	}
	var model admission.Model
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, ps := range pkts {
			// Decode each frame many times per observation so the
			// measurement dominates scheduler noise.
			const reps = 20
			start := time.Now()
			for r := 0; r < reps; r++ {
				dec := mpeg.NewDecoder()
				for _, p := range ps {
					if _, err := dec.Decode(p); err != nil {
						b.Fatal(err)
					}
				}
			}
			model.Observe(sizes[j], time.Since(start)/reps)
		}
	}
	b.ReportMetric(model.R2(), "R2")
	b.ReportMetric(model.Slope(), "ns-per-bit")
}
