// Burst-mode gates: batch classification must agree frame-for-frame with
// the reference walk (it may share, it may not lie), in-burst sharing must
// die the instant a control-plane change lands mid-burst, and burst mode end
// to end must charge exactly what per-frame mode charges. E12 in mpegbench
// is the seeded 2x2 counterpart.
package scout_test

import (
	"math/rand"
	"testing"
	"time"

	"scout/internal/appliance"
	"scout/internal/core"
	"scout/internal/exp"
	"scout/internal/msg"
	"scout/internal/netdev"
	"scout/internal/proto/eth"
	"scout/internal/proto/inet"
	"scout/internal/proto/ip"
	"scout/internal/proto/mflow"
	"scout/internal/proto/udp"
	"scout/internal/sim"
)

// TestClassifyBurstDifferential: for random bursts of mutated frames, the
// batch classifier's decisions must equal the full walk on every frame,
// with mid-stream path churn between bursts.
func TestClassifyBurstDifferential(t *testing.T) {
	k, err := exp.NewMicroKernel()
	if err != nil {
		t.Fatal(err)
	}
	testR, _ := k.Graph.Router("TEST")
	p, err := k.Graph.CreatePath(testR, exp.TestPathAttrs(9300))
	if err != nil {
		t.Fatal(err)
	}
	template := exp.BuildVideoFrame(k, 9300, 256).CopyOut()
	hdrLen := eth.HeaderLen + ip.HeaderLen + udp.HeaderLen

	rng := rand.New(rand.NewSource(13))
	frame := func(mutations int) *msg.Msg {
		f := make([]byte, len(template))
		copy(f, template)
		for n := mutations; n > 0; n-- {
			f[rng.Intn(hdrLen)] ^= byte(1 + rng.Intn(255))
		}
		return msg.New(f)
	}

	var cls []eth.BurstClass
	for round := 0; round < 300; round++ {
		burst := make([]*msg.Msg, 1+rng.Intn(16))
		for i := range burst {
			// Bias toward pristine frames so same-flow runs occur and the
			// memo actually shares; mutants exercise the ineligible and
			// no-path arms in between.
			burst[i] = frame(rng.Intn(3))
		}
		cls = k.ETH.ClassifyBurst(burst, cls[:0])
		if len(cls) != len(burst) {
			t.Fatalf("burst of %d produced %d classifications", len(burst), len(cls))
		}
		for i, m := range burst {
			pu, eu := k.ETH.ClassifyUncached(m)
			if cls[i].Path != pu || (cls[i].Err == nil) != (eu == nil) {
				t.Fatalf("frame %d of burst diverges: burst (%p, %v) vs walk (%p, %v)",
					i, cls[i].Path, cls[i].Err, pu, eu)
			}
			m.Free()
		}
		if round%50 == 49 {
			p.Delete()
			if p, err = k.Graph.CreatePath(testR, exp.TestPathAttrs(9300)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if k.ETH.Stats().BurstShared == 0 {
		t.Error("no frame ever resolved by in-burst sharing: differential degenerate")
	}
}

// TestBurstMemoInvalidationMidBurst pins the central burst-safety property:
// delivering a frame can synchronously run control-plane code (queue wake →
// dispatch), and a same-flow frame later in the burst must observe the
// change. Here the first enqueue destroys the path; with a stale memo the
// second frame would be enqueued onto the dead path — a misroute. The memo's
// generation check must force a re-resolution that finds no path.
func TestBurstMemoInvalidationMidBurst(t *testing.T) {
	k, err := exp.NewMicroKernel()
	if err != nil {
		t.Fatal(err)
	}
	testR, _ := k.Graph.Router("TEST")
	p, err := k.Graph.CreatePath(testR, exp.TestPathAttrs(9300))
	if err != nil {
		t.Fatal(err)
	}
	q := p.IncomingQueue(k.ETH.Router().Name)
	if q == nil {
		t.Fatal("no incoming queue at the ETH end")
	}
	q.NotEmpty = func() { p.Delete() }

	f1 := exp.BuildVideoFrame(k, 9300, 64)
	f2 := exp.BuildVideoFrame(k, 9300, 64)
	base := k.ETH.Stats()
	k.Dev.OnReceiveBurst([]*msg.Msg{f1, f2})

	if !p.Dead() {
		t.Fatal("first enqueue did not destroy the path")
	}
	if q.Len() != 0 {
		t.Fatalf("dead path's queue holds %d messages: burst enqueued onto a destroyed path", q.Len())
	}
	st := k.ETH.Stats()
	if got := st.RxNoPath - base.RxNoPath; got != 1 {
		t.Errorf("RxNoPath delta = %d, want 1 (second frame must re-resolve and find no path)", got)
	}
	if got := st.BurstShared - base.BurstShared; got != 0 {
		t.Errorf("BurstShared delta = %d, want 0 (memo must die with the invalidation)", got)
	}
}

// TestClassifyBurstAllocFree extends the heap-escape audit to the batch
// classifier: a warm burst classification with a reused scratch slice must
// not allocate.
func TestClassifyBurstAllocFree(t *testing.T) {
	k, err := exp.NewMicroKernel()
	if err != nil {
		t.Fatal(err)
	}
	testR, _ := k.Graph.Router("TEST")
	if _, err := k.Graph.CreatePath(testR, exp.TestPathAttrs(9300)); err != nil {
		t.Fatal(err)
	}
	burst := make([]*msg.Msg, 16)
	for i := range burst {
		burst[i] = exp.BuildVideoFrame(k, 9300, 256)
	}
	cls := make([]eth.BurstClass, 0, len(burst))
	k.ETH.ClassifyBurst(burst, cls[:0]) // warm the cache
	if allocs := testing.AllocsPerRun(100, func() {
		cls = k.ETH.ClassifyBurst(burst, cls[:0])
		for i := range cls {
			if cls[i].Err != nil {
				t.Fatal(cls[i].Err)
			}
		}
	}); allocs != 0 {
		t.Errorf("burst classify allocates %.0f times per burst, want 0", allocs)
	}
}

// burstWorld boots a kernel on a link so fast that back-to-back frames
// arrive at the same instant, with a traffic source device attached.
func burstWorld(t *testing.T, coalesce bool) (*appliance.Kernel, *netdev.Device) {
	t.Helper()
	eng := sim.New(5)
	link := netdev.NewLink(eng, netdev.LinkConfig{BitsPerSec: 1 << 60})
	cfg := appliance.DefaultConfig()
	cfg.CoalesceRx = coalesce
	cfg.Tracing = true
	k, err := appliance.Boot(eng, link, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sender := netdev.NewDevice(link, netdev.MAC{2, 0, 0, 0, 0, 0x20}, nil)
	return k, sender
}

// videoPathAndFrames creates a traced video path and returns it with a
// frame template addressed to it.
func videoPathAndFrames(t *testing.T, k *appliance.Kernel) (*core.Path, []byte) {
	t.Helper()
	k.MFLOW.AckEvery = 1 << 30
	p, lport, err := k.CreateVideoPath(&appliance.VideoAttrs{
		Source:    inet.Participants{RemoteAddr: inet.Addr{10, 0, 0, 20}, RemotePort: 7000},
		FPS:       30,
		CostModel: true,
		QueueLen:  64,
		Trace:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p, buildContinuationFrame(k, uint16(lport))
}

// sendBurst transmits n same-flow frames back to back (same-instant
// arrivals on the fast link), seq advancing.
func sendBurst(sender *netdev.Device, k *appliance.Kernel, tmpl []byte, n int, seq *uint32) {
	for i := 0; i < n; i++ {
		f := make([]byte, len(tmpl))
		copy(f, tmpl)
		*seq++
		mflow.Header{Kind: mflow.KindData, Seq: *seq}.Put(
			f[eth.HeaderLen+ip.HeaderLen+udp.HeaderLen:])
		sender.Transmit(k.Cfg.MAC, msg.New(f))
	}
}

// TestBurstTraceSpansPerFrame: a multi-frame coalesced burst must still
// produce one queue observation per frame — spans nest per frame, never per
// burst.
func TestBurstTraceSpansPerFrame(t *testing.T) {
	k, sender := burstWorld(t, true)
	p, tmpl := videoPathAndFrames(t, k)

	const n = 12
	var seq uint32
	sendBurst(sender, k, tmpl, n, &seq)
	k.Eng.RunFor(time.Second)

	if bursts, frames := k.Dev.BurstStats(); bursts != 1 || frames != n {
		t.Fatalf("burst stats = (%d, %d), want (1, %d)", bursts, frames, n)
	}
	d, ok := p.IncomingDir(k.ETH.Router().Name)
	if !ok {
		t.Fatal("video path has no ETH end")
	}
	qm := k.Tracer.Path(p.PID).Queues[core.QIn(d)]
	if qm.Enqueued != n {
		t.Errorf("traced enqueues = %d, want %d (one per frame)", qm.Enqueued, n)
	}
	if qm.Dequeued != n {
		t.Errorf("traced dequeues = %d, want %d", qm.Dequeued, n)
	}
	if qm.Wait.Count != n {
		t.Errorf("queue-wait observations = %d, want %d (one span per frame)", qm.Wait.Count, n)
	}
}

// TestBurstEndToEndEquivalence streams dense same-instant bursts through two
// kernels differing only in CoalesceRx and requires identical virtual-time
// charges: burst mode changes which host code runs, never an outcome.
func TestBurstEndToEndEquivalence(t *testing.T) {
	type outcome struct {
		cpu      time.Duration
		irq      time.Duration
		busy     time.Duration
		rxFrames int64
		end      sim.Time
	}
	run := func(coalesce bool) outcome {
		k, sender := burstWorld(t, coalesce)
		p, tmpl := videoPathAndFrames(t, k)
		var seq uint32
		// Three bursts at distinct instants, each dense enough to coalesce.
		for i := 0; i < 3; i++ {
			k.Eng.At(sim.Time(time.Duration(i)*time.Millisecond), func() {
				sendBurst(sender, k, tmpl, 24, &seq)
			})
		}
		k.Eng.RunFor(time.Second)
		st := k.CPU.Stats()
		return outcome{
			cpu:      p.CPUTime(),
			irq:      st.IRQ,
			busy:     st.Busy,
			rxFrames: k.ETH.Stats().RxFrames,
			end:      k.Eng.Now(),
		}
	}
	burst, plain := run(true), run(false)
	if burst != plain {
		t.Fatalf("burst mode diverges from per-frame mode:\nburst: %+v\nplain: %+v", burst, plain)
	}
	if burst.rxFrames != 72 {
		t.Fatalf("delivered %d frames, want 72", burst.rxFrames)
	}
}

// TestBurstReceiveSharesResolution: a same-flow burst through the real
// receive path resolves once and shares — the flow cache sees one lookup
// run, not one per frame.
func TestBurstReceiveSharesResolution(t *testing.T) {
	k, sender := burstWorld(t, true)
	_, tmpl := videoPathAndFrames(t, k)

	// Warm: first burst pays one miss (walk + insert); the rest share.
	var seq uint32
	sendBurst(sender, k, tmpl, 16, &seq)
	k.Eng.RunFor(time.Second)

	st := k.ETH.Stats()
	if st.BurstShared < 14 {
		t.Errorf("burst shared %d of 16 same-flow frames; want >= 14", st.BurstShared)
	}
	fc := k.Dev.Flows.Stats()
	if lookups := fc.Hits + fc.Misses; lookups > 2 {
		t.Errorf("flow cache consulted %d times for one same-flow burst, want <= 2", lookups)
	}
}
