module scout

go 1.24
