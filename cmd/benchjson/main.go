// benchjson converts `go test -bench` text output into a machine-readable
// JSON document, so CI can accumulate the perf trajectory run over run
// (BENCH_pr*.json artifacts), and diffs two such documents against
// per-metric regression thresholds (`make benchdiff`).
//
// Usage:
//
//	go test -bench . -benchmem ./... > bench.txt
//	benchjson -in bench.txt -out BENCH_pr5.json
//	go test -bench . -benchmem . | benchjson -out BENCH_pr5.json
//	benchjson -base BENCH_pr3.json -new BENCH_pr5.json
//
// It parses the standard benchmark line format — name, iteration count,
// then value/unit pairs (ns/op, B/op, allocs/op, and any custom
// b.ReportMetric units like fps) — plus the goos/goarch/pkg/cpu header
// lines. Unrecognized lines pass through untouched to stderr-free silence,
// so `go test` status lines don't break parsing.
//
// Compare mode (-base/-new) applies these rules per benchmark shared by the
// two documents:
//
//   - allocs/op must not grow beyond 0.1%: a zero-alloc baseline therefore
//     stays strict (the data path must not rot), while whole-simulation
//     benchmarks get just enough slack for sync.Pool/GC-timing jitter.
//     Scoutlint is exempt — it allocates in proportion to this repo's own
//     source, which every PR grows.
//   - ns/op must stay within a ratio threshold (default 1.2×), but only
//     when both documents were recorded on the same CPU — wall-clock time
//     is not comparable across machines. The flow cache's ≥3× win over the
//     uncached walk is enforced within the new document (hit vs cold-miss),
//     not against the baseline, since pr5 both sides carry the cache.
//   - fps must not drop below 0.999× of the base — the virtual-time frame
//     rates are deterministic, so any real regression shows up exactly.
//   - wall-clock throughput ("/s" units such as pkts/s) must not drop below
//     1/1.2× of the base, same-CPU only — the rate mirror of the ns/op rule.
//   - other virtual-clock metrics (ns-per-packet, neptune-missed) must be
//     bit-identical: they are simulation outputs, and drift means the
//     change altered behaviour, not just speed.
//
// Independent of the base, the new document must show the flow cache's
// hit-vs-walk separation internally (≥1.5×): BenchmarkE2_Demux (cache hit)
// vs BenchmarkE2_Demux_ColdMiss (full walk) on the same machine and run.
// The in-run bound is lower than the headline because the reference walk
// itself got ~19× faster in pr5. Likewise BenchmarkE2_Demux_Burst must come
// in under its absolute amortized budget (20 wall-ns/pkt).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

type benchmark struct {
	Name       string             `json:"name"`
	Pkg        string             `json:"pkg,omitempty"`
	Procs      int                `json:"procs,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

type doc struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []benchmark `json:"benchmarks"`
}

func main() {
	inPath := flag.String("in", "", "input file (default stdin)")
	outPath := flag.String("out", "", "output file (default stdout)")
	basePath := flag.String("base", "", "compare mode: baseline JSON document")
	newPath := flag.String("new", "", "compare mode: candidate JSON document")
	flag.Parse()

	if (*basePath == "") != (*newPath == "") {
		fmt.Fprintln(os.Stderr, "benchjson: -base and -new must be given together")
		os.Exit(2)
	}
	if *basePath != "" {
		os.Exit(compare(os.Stdout, *basePath, *newPath))
	}

	in := os.Stdin
	if *inPath != "" {
		f, err := os.Open(*inPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}

	d, err := parse(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if len(d.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found in input")
		os.Exit(1)
	}
	b, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	b = append(b, '\n')
	if *outPath == "" {
		_, err = os.Stdout.Write(b)
	} else {
		err = os.WriteFile(*outPath, b, 0o644)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: %d benchmarks\n", len(d.Benchmarks))
}

func parse(r io.Reader) (doc, error) {
	var d doc
	d.Benchmarks = []benchmark{}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			d.Goos = strings.TrimPrefix(line, "goos: ")
			continue
		case strings.HasPrefix(line, "goarch: "):
			d.Goarch = strings.TrimPrefix(line, "goarch: ")
			continue
		case strings.HasPrefix(line, "cpu: "):
			d.CPU = strings.TrimPrefix(line, "cpu: ")
			continue
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Name, iterations, then value/unit pairs.
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		b := benchmark{Pkg: pkg, Iterations: iters, Metrics: map[string]float64{}}
		b.Name = fields[0]
		if i := strings.LastIndex(b.Name, "-"); i > 0 {
			if procs, err := strconv.Atoi(b.Name[i+1:]); err == nil {
				b.Procs = procs
				b.Name = b.Name[:i]
			}
		}
		ok := true
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				ok = false
				break
			}
			b.Metrics[fields[i+1]] = v
		}
		if ok {
			d.merge(b)
		}
	}
	return d, sc.Err()
}

// merge folds a parsed benchmark line into the document. Repeated lines for
// the same benchmark (`go test -count=N`) keep the best observation per
// metric: min for cost metrics (ns/op, B/op, allocs/op, wall-ns/pkt —
// best-of-N is the standard defence against scheduler/GC noise on shared
// machines), max for rates (fps and any "/s" unit such as pkts/s).
// Virtual-time metrics are deterministic, so for them the policy is a
// no-op.
func (d *doc) merge(b benchmark) {
	for i := range d.Benchmarks {
		have := &d.Benchmarks[i]
		if have.Name != b.Name || have.Pkg != b.Pkg {
			continue
		}
		units := make([]string, 0, len(b.Metrics))
		for unit := range b.Metrics {
			units = append(units, unit)
		}
		sort.Strings(units)
		for _, unit := range units {
			v := b.Metrics[unit]
			old, seen := have.Metrics[unit]
			switch {
			case !seen:
				have.Metrics[unit] = v
			case unit == "fps" || strings.HasSuffix(unit, "/s"):
				have.Metrics[unit] = max(old, v)
			default:
				have.Metrics[unit] = min(old, v)
			}
		}
		return
	}
	d.Benchmarks = append(d.Benchmarks, b)
}
