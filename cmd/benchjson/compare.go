package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// nsRatioCeil is the default allowed ns/op growth between base and new.
// Wall-clock microbenchmarks jitter; 20% headroom keeps the gate about
// regressions, not noise.
const nsRatioCeil = 1.2

// nsCeilOverrides tightens (or loosens) the ns/op ceiling per benchmark.
// E2_Demux is the flow cache's headline claim: a cache-hit classification
// must run in at most 1/3 of the pr3 full-walk baseline. The ILP ablations
// are whole-simulation runs whose wall time is GC-dominated (tens of
// thousands of allocs per op) and swings ±25% with machine load; their
// deterministic virtual-time result (ns-per-packet) is compared exactly
// instead, so the wall ceiling only has to catch order-of-magnitude rot.
var nsCeilOverrides = map[string]float64{
	"BenchmarkE2_Demux":         0.34,
	"BenchmarkAblation_ILP_On":  1.5,
	"BenchmarkAblation_ILP_Off": 1.5,
}

// exactUnits are custom benchmark metrics computed on the virtual clock:
// deterministic by construction, so any drift between base and new is a
// real behaviour change, not noise.
var exactUnits = []string{"ns-per-packet", "neptune-missed"}

// fpsRatioFloor is the allowed fps shrinkage: virtual frame rates are
// deterministic, so this is effectively "no regression" with float slack.
const fpsRatioFloor = 0.999

// demuxSeparation is the required within-document cold-miss/hit ratio: the
// walk must cost at least this multiple of a cache hit. The pr3→pr5 ≥3×
// headline is enforced against the pr3 baseline by the E2_Demux ceiling
// override above; this in-run bound is deliberately lower because the
// reference walk itself got ~19× faster in pr5 (flat metadata, scratch
// parsing), leaving ≈2× between a hit and the already-cheap walk.
const demuxSeparation = 1.5

func loadDoc(path string) (doc, error) {
	var d doc
	b, err := os.ReadFile(path)
	if err != nil {
		return d, err
	}
	err = json.Unmarshal(b, &d)
	return d, err
}

// compare diffs base and new benchmark documents and returns the process
// exit code: 0 when every threshold holds, 1 otherwise.
func compare(w io.Writer, basePath, newPath string) int {
	base, err := loadDoc(basePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 2
	}
	cand, err := loadDoc(newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 2
	}

	byName := make(map[string]benchmark, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		byName[b.Name] = b
	}
	sameCPU := base.CPU != "" && base.CPU == cand.CPU
	if !sameCPU {
		fmt.Fprintf(w, "benchjson: CPUs differ (%q vs %q): ns/op not compared\n", base.CPU, cand.CPU)
	}

	failures := 0
	fail := func(format string, args ...any) {
		failures++
		fmt.Fprintf(w, "FAIL "+format+"\n", args...)
	}
	checked := 0

	names := make([]string, 0, len(cand.Benchmarks))
	candByName := make(map[string]benchmark, len(cand.Benchmarks))
	for _, b := range cand.Benchmarks {
		names = append(names, b.Name)
		candByName[b.Name] = b
	}
	sort.Strings(names)

	for _, name := range names {
		nb := candByName[name]
		bb, inBase := byName[name]
		if !inBase {
			fmt.Fprintf(w, "new  %s (no baseline)\n", name)
			continue
		}
		if na, ok := nb.Metrics["allocs/op"]; ok {
			if ba, have := bb.Metrics["allocs/op"]; have {
				checked++
				if na > ba {
					fail("%s allocs/op %.0f -> %.0f (must not grow)", name, ba, na)
				}
			}
		}
		if sameCPU {
			if nn, ok := nb.Metrics["ns/op"]; ok {
				if bn, have := bb.Metrics["ns/op"]; have && bn > 0 {
					checked++
					ceil := nsRatioCeil
					if o, has := nsCeilOverrides[name]; has {
						ceil = o
					}
					if r := nn / bn; r > ceil {
						fail("%s ns/op %.0f -> %.0f (ratio %.2f > %.2f)", name, bn, nn, r, ceil)
					} else {
						fmt.Fprintf(w, "ok   %s ns/op %.0f -> %.0f (ratio %.2f <= %.2f)\n", name, bn, nn, r, ceil)
					}
				}
			}
		}
		if nf, ok := nb.Metrics["fps"]; ok {
			if bf, have := bb.Metrics["fps"]; have && bf > 0 {
				checked++
				if r := nf / bf; r < fpsRatioFloor {
					fail("%s fps %.2f -> %.2f (ratio %.4f < %.4f)", name, bf, nf, r, fpsRatioFloor)
				}
			}
		}
		for _, unit := range exactUnits {
			if nv, ok := nb.Metrics[unit]; ok {
				if bv, have := bb.Metrics[unit]; have {
					checked++
					if nv != bv {
						fail("%s %s %v -> %v (virtual-time metric must not drift)", name, unit, bv, nv)
					}
				}
			}
		}
	}
	baseNames := make([]string, 0, len(byName))
	for name := range byName {
		baseNames = append(baseNames, name)
	}
	sort.Strings(baseNames)
	for _, name := range baseNames {
		if _, still := candByName[name]; !still {
			fail("%s present in base but missing from new (coverage lost)", name)
		}
	}

	// The flow cache's hit/walk separation, measured within the new document
	// so the comparison is same-machine, same-run.
	hit, haveHit := candByName["BenchmarkE2_Demux"]
	walk, haveWalk := candByName["BenchmarkE2_Demux_ColdMiss"]
	switch {
	case !haveHit || !haveWalk:
		fail("new document lacks BenchmarkE2_Demux / BenchmarkE2_Demux_ColdMiss pair")
	default:
		h, w1 := hit.Metrics["ns/op"], walk.Metrics["ns/op"]
		checked++
		if h <= 0 || w1/h < demuxSeparation {
			fail("flow cache separation: hit %.0f ns/op vs walk %.0f ns/op (%.2fx < %.1fx)",
				h, w1, w1/h, demuxSeparation)
		} else {
			fmt.Fprintf(w, "ok   flow cache separation: hit %.0f ns/op vs walk %.0f ns/op (%.2fx >= %.1fx)\n",
				h, w1, w1/h, demuxSeparation)
		}
	}

	if failures > 0 {
		fmt.Fprintf(w, "benchjson: %d comparison(s), %d FAILED\n", checked, failures)
		return 1
	}
	fmt.Fprintf(w, "benchjson: %d comparison(s), all within thresholds\n", checked)
	return 0
}
