package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// nsRatioCeil is the default allowed ns/op growth between base and new.
// Wall-clock microbenchmarks jitter; 20% headroom keeps the gate about
// regressions, not noise.
const nsRatioCeil = 1.2

// nsCeilOverrides tightens (or loosens) the ns/op ceiling per benchmark.
// The ILP ablations are whole-simulation runs whose wall time is
// GC-dominated (tens of thousands of allocs per op) and swings ±25% with
// machine load; their deterministic virtual-time result (ns-per-packet) is
// compared exactly instead, so the wall ceiling only has to catch
// order-of-magnitude rot. (Until the baseline moved from pr3 to pr5,
// E2_Demux carried a 0.34 ceiling here — the flow cache's ≥3× win over the
// pr3 walk. Both documents now have the cache, so that claim is enforced by
// the within-document hit/walk separation check below instead.)
// Scoutlint's input is this repository's own source, so its wall time grows
// linearly with every PR; the 2× ceiling only has to catch superlinear
// (algorithmic) blowups in the analyses.
var nsCeilOverrides = map[string]float64{
	"BenchmarkAblation_ILP_On":  1.5,
	"BenchmarkAblation_ILP_Off": 1.5,
	"BenchmarkScoutlint":        2.0,
}

// allocsSlack is the allowed relative allocs/op growth. A zero-alloc
// baseline stays strict (0.1% of 0 is 0), so the data-path invariant cannot
// rot. Whole-simulation benchmarks, though, make 10^5–10^6 allocations whose
// exact count jitters by a handful run to run — sync.Pool victim caches
// refill with real allocations, and when the GC clears them depends on wall
// time. 0.1% absorbs that jitter while still catching any per-packet or
// per-frame allocation leak, which shows up at percent scale.
const allocsSlack = 1.001

// allocsExempt lists benchmarks whose allocation count measures the repo
// itself rather than the code under test. Scoutlint parses and analyses this
// repository's source, so every PR grows its input and its allocs/op rises
// by design; only its wall time is gated.
var allocsExempt = map[string]bool{
	"BenchmarkScoutlint": true,
}

// exactUnits are custom benchmark metrics computed on the virtual clock:
// deterministic by construction, so any drift between base and new is a
// real behaviour change, not noise.
var exactUnits = []string{"ns-per-packet", "neptune-missed"}

// fpsRatioFloor is the allowed fps shrinkage: virtual frame rates are
// deterministic, so this is effectively "no regression" with float slack.
const fpsRatioFloor = 0.999

// wallRateFloor is the allowed shrinkage for wall-clock throughput metrics
// ("/s" units such as pkts/s). Unlike fps these are real measurements, so
// the floor mirrors the 20% ns/op jitter headroom; like ns/op they are only
// compared when both documents come from the same CPU.
const wallRateFloor = 1 / nsRatioCeil

// burstAmortizedCeil is the absolute amortized classification budget in the
// new document: BenchmarkE2_Demux_Burst must come in under this many
// wall-clock nanoseconds per packet (the burst fast-path headline). Checked
// within one document, so it is same-machine by construction.
const burstAmortizedCeil = 20.0

// demuxSeparation is the required within-document cold-miss/hit ratio: the
// walk must cost at least this multiple of a cache hit. The pr3→pr5 ≥3×
// headline is enforced against the pr3 baseline by the E2_Demux ceiling
// override above; this in-run bound is deliberately lower because the
// reference walk itself got ~19× faster in pr5 (flat metadata, scratch
// parsing), leaving ≈2× between a hit and the already-cheap walk.
const demuxSeparation = 1.5

func loadDoc(path string) (doc, error) {
	var d doc
	b, err := os.ReadFile(path)
	if err != nil {
		return d, err
	}
	err = json.Unmarshal(b, &d)
	return d, err
}

// compare diffs base and new benchmark documents and returns the process
// exit code: 0 when every threshold holds, 1 otherwise.
func compare(w io.Writer, basePath, newPath string) int {
	base, err := loadDoc(basePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 2
	}
	cand, err := loadDoc(newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 2
	}

	byName := make(map[string]benchmark, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		byName[b.Name] = b
	}
	sameCPU := base.CPU != "" && base.CPU == cand.CPU
	if !sameCPU {
		fmt.Fprintf(w, "benchjson: CPUs differ (%q vs %q): ns/op not compared\n", base.CPU, cand.CPU)
	}

	failures := 0
	fail := func(format string, args ...any) {
		failures++
		fmt.Fprintf(w, "FAIL "+format+"\n", args...)
	}
	checked := 0

	names := make([]string, 0, len(cand.Benchmarks))
	candByName := make(map[string]benchmark, len(cand.Benchmarks))
	for _, b := range cand.Benchmarks {
		names = append(names, b.Name)
		candByName[b.Name] = b
	}
	sort.Strings(names)

	for _, name := range names {
		nb := candByName[name]
		bb, inBase := byName[name]
		if !inBase {
			fmt.Fprintf(w, "new  %s (no baseline)\n", name)
			continue
		}
		if na, ok := nb.Metrics["allocs/op"]; ok && !allocsExempt[name] {
			if ba, have := bb.Metrics["allocs/op"]; have {
				checked++
				if na > ba*allocsSlack {
					fail("%s allocs/op %.0f -> %.0f (must not grow)", name, ba, na)
				}
			}
		}
		if sameCPU {
			if nn, ok := nb.Metrics["ns/op"]; ok {
				if bn, have := bb.Metrics["ns/op"]; have && bn > 0 {
					checked++
					ceil := nsRatioCeil
					if o, has := nsCeilOverrides[name]; has {
						ceil = o
					}
					if r := nn / bn; r > ceil {
						fail("%s ns/op %.0f -> %.0f (ratio %.2f > %.2f)", name, bn, nn, r, ceil)
					} else {
						fmt.Fprintf(w, "ok   %s ns/op %.0f -> %.0f (ratio %.2f <= %.2f)\n", name, bn, nn, r, ceil)
					}
				}
			}
		}
		if nf, ok := nb.Metrics["fps"]; ok {
			if bf, have := bb.Metrics["fps"]; have && bf > 0 {
				checked++
				if r := nf / bf; r < fpsRatioFloor {
					fail("%s fps %.2f -> %.2f (ratio %.4f < %.4f)", name, bf, nf, r, fpsRatioFloor)
				}
			}
		}
		if sameCPU {
			units := make([]string, 0, len(nb.Metrics))
			for unit := range nb.Metrics {
				units = append(units, unit)
			}
			sort.Strings(units)
			for _, unit := range units {
				if !strings.HasSuffix(unit, "/s") {
					continue
				}
				nv := nb.Metrics[unit]
				if bv, have := bb.Metrics[unit]; have && bv > 0 {
					checked++
					if r := nv / bv; r < wallRateFloor {
						fail("%s %s %.0f -> %.0f (ratio %.2f < %.2f)", name, unit, bv, nv, r, wallRateFloor)
					} else {
						fmt.Fprintf(w, "ok   %s %s %.0f -> %.0f (ratio %.2f >= %.2f)\n", name, unit, bv, nv, r, wallRateFloor)
					}
				}
			}
		}
		for _, unit := range exactUnits {
			if nv, ok := nb.Metrics[unit]; ok {
				if bv, have := bb.Metrics[unit]; have {
					checked++
					if nv != bv {
						fail("%s %s %v -> %v (virtual-time metric must not drift)", name, unit, bv, nv)
					}
				}
			}
		}
	}
	baseNames := make([]string, 0, len(byName))
	for name := range byName {
		baseNames = append(baseNames, name)
	}
	sort.Strings(baseNames)
	for _, name := range baseNames {
		if _, still := candByName[name]; !still {
			fail("%s present in base but missing from new (coverage lost)", name)
		}
	}

	// The flow cache's hit/walk separation, measured within the new document
	// so the comparison is same-machine, same-run.
	hit, haveHit := candByName["BenchmarkE2_Demux"]
	walk, haveWalk := candByName["BenchmarkE2_Demux_ColdMiss"]
	switch {
	case !haveHit || !haveWalk:
		fail("new document lacks BenchmarkE2_Demux / BenchmarkE2_Demux_ColdMiss pair")
	default:
		h, w1 := hit.Metrics["ns/op"], walk.Metrics["ns/op"]
		checked++
		if h <= 0 || w1/h < demuxSeparation {
			fail("flow cache separation: hit %.0f ns/op vs walk %.0f ns/op (%.2fx < %.1fx)",
				h, w1, w1/h, demuxSeparation)
		} else {
			fmt.Fprintf(w, "ok   flow cache separation: hit %.0f ns/op vs walk %.0f ns/op (%.2fx >= %.1fx)\n",
				h, w1, w1/h, demuxSeparation)
		}
	}

	// The burst classifier's absolute amortized budget, measured within the
	// new document.
	if burst, have := candByName["BenchmarkE2_Demux_Burst"]; have {
		if v, ok := burst.Metrics["wall-ns/pkt"]; ok {
			checked++
			if v >= burstAmortizedCeil {
				fail("burst amortized classification %.2f wall-ns/pkt (>= %.0f budget)", v, burstAmortizedCeil)
			} else {
				fmt.Fprintf(w, "ok   burst amortized classification %.2f wall-ns/pkt (< %.0f budget)\n", v, burstAmortizedCeil)
			}
		} else {
			fail("BenchmarkE2_Demux_Burst lacks the wall-ns/pkt metric")
		}
	} else {
		fail("new document lacks BenchmarkE2_Demux_Burst")
	}

	if failures > 0 {
		fmt.Fprintf(w, "benchjson: %d comparison(s), %d FAILED\n", checked, failures)
		return 1
	}
	fmt.Fprintf(w, "benchjson: %d comparison(s), all within thresholds\n", checked)
	return 0
}
