// mkclip generates a synthetic video clip, encodes it with the MPEG-style
// codec, and writes the ALF packet stream to a file. With -decode it reads
// such a file back, verifies it decodes, and optionally dumps the last
// frame as a PGM image.
//
// Usage:
//
//	mkclip -o clip.alf -frames 60 -w 160 -h 112 -q 3
//	mkclip -decode clip.alf -pgm last.pgm
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"log"
	"os"

	"scout/internal/mpeg"
)

func main() {
	out := flag.String("o", "clip.alf", "output packet-stream file")
	frames := flag.Int("frames", 60, "frames to generate")
	width := flag.Int("w", 160, "width (multiple of 16)")
	height := flag.Int("h", 112, "height (multiple of 16)")
	qscale := flag.Int("q", 3, "quantiser scale 1..31")
	gop := flag.Int("gop", 15, "I-frame period")
	detail := flag.Float64("detail", 0.5, "scene texture 0..1")
	motion := flag.Float64("motion", 1.0, "scene pan speed px/frame")
	decode := flag.String("decode", "", "decode a packet-stream file instead of encoding")
	pgm := flag.String("pgm", "", "with -decode: write the last frame's luma as PGM")
	flag.Parse()

	if *decode != "" {
		doDecode(*decode, *pgm)
		return
	}

	enc, err := mpeg.NewEncoder(mpeg.EncoderConfig{
		W: *width, H: *height, GOP: *gop, QScale: *qscale, SearchRange: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	scene := mpeg.NewScene(mpeg.SceneConfig{
		W: *width, H: *height, Detail: *detail, Motion: *motion, Objects: 2, Seed: 7,
	})
	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()

	var packets, bytes int
	for i := 0; i < *frames; i++ {
		pkts, kind := enc.Encode(scene.Frame(i))
		var frameBytes int
		for _, p := range pkts {
			b := p.Marshal()
			var lenHdr [4]byte
			binary.BigEndian.PutUint32(lenHdr[:], uint32(len(b)))
			if _, err := f.Write(lenHdr[:]); err != nil {
				log.Fatal(err)
			}
			if _, err := f.Write(b); err != nil {
				log.Fatal(err)
			}
			packets++
			frameBytes += len(b)
		}
		bytes += frameBytes
		fmt.Printf("frame %3d (%c): %2d packets, %5d bytes\n", i, kind, len(pkts), frameBytes)
	}
	fmt.Printf("\nwrote %s: %d frames, %d packets, %d bytes (%.1f kbit/frame avg)\n",
		*out, *frames, packets, bytes, float64(bytes)*8/1000/float64(*frames))
}

func doDecode(path, pgmOut string) {
	data, err := os.ReadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	dec := mpeg.NewDecoder()
	var last *mpeg.Frame
	off := 0
	for off+4 <= len(data) {
		n := int(binary.BigEndian.Uint32(data[off : off+4]))
		off += 4
		if off+n > len(data) {
			log.Fatal("truncated packet stream")
		}
		f, err := dec.DecodePacket(data[off : off+n])
		if err != nil {
			log.Fatalf("decode: %v", err)
		}
		if f != nil {
			last = f
		}
		off += n
	}
	w, h := dec.Size()
	fmt.Printf("decoded %d frames (%dx%d), %d packets, %d incomplete\n",
		dec.FramesOut, w, h, dec.PacketsIn, dec.Incomplete)
	if pgmOut != "" && last != nil {
		out, err := os.Create(pgmOut)
		if err != nil {
			log.Fatal(err)
		}
		defer out.Close()
		fmt.Fprintf(out, "P5\n%d %d\n255\n", last.W, last.H)
		out.Write(last.Y)
		fmt.Printf("wrote %s\n", pgmOut)
	}
}
