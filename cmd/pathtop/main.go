// pathtop renders the pathtrace metrics JSON (mpegbench -run e10 -metrics,
// or any pathtrace.Tracer.WriteMetricsJSON dump) as a flat per-path text
// table: stage CPU attribution, queue waits and depths, interrupt steal,
// and wire occupancy.
//
// Usage:
//
//	pathtop metrics.json         # render a file
//	mpegbench -run e10 -metrics /dev/stdout | pathtop   # or a pipe
//	pathtop -sort cum metrics.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"scout/internal/pathtrace"
)

func main() {
	sortBy := flag.String("sort", "self", "stage row order: self|cum|execs")
	flag.Parse()

	in := os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	data, err := io.ReadAll(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var doc pathtrace.MetricsDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		fmt.Fprintf(os.Stderr, "pathtop: not a pathtrace metrics document: %v\n", err)
		os.Exit(1)
	}
	if len(doc.Paths) == 0 {
		fmt.Println("no instrumented paths in input")
		return
	}
	pathtrace.RenderMetrics(os.Stdout, doc, *sortBy)
}
