// Command scoutlint runs the repo's static-analysis suite (internal/lint):
// analyzers that machine-check the path invariants the paper establishes at
// path-creation time — virtual-clock determinism, the typed attr.Name
// vocabulary, data-path error discipline, lock/callback hygiene, and no
// silently dropped errors.
//
// Usage:
//
//	go run ./cmd/scoutlint ./...
//
// Findings print as "file:line: [rule] message" and make the exit status
// nonzero. Suppressions live in .scoutlint-allow at the module root; stale
// suppressions (matching nothing) are themselves an error so the file stays
// an honest record.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"scout/internal/lint"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		allowFlag = flag.String("allow", "", "allowlist file (default <module root>/.scoutlint-allow)")
		rulesFlag = flag.String("rules", "", "comma-separated analyzer subset (default: all)")
		listFlag  = flag.Bool("list", false, "list analyzers and exit")
	)
	flag.Parse()

	analyzers := lint.All()
	if *listFlag {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *rulesFlag != "" {
		var err error
		analyzers, err = lint.ByName(*rulesFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, "scoutlint:", err)
			return 2
		}
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "scoutlint:", err)
		return 2
	}
	root, err := lint.FindModuleRoot(wd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "scoutlint:", err)
		return 2
	}

	allowPath := *allowFlag
	if allowPath == "" {
		allowPath = filepath.Join(root, ".scoutlint-allow")
	}
	allow, err := lint.ParseAllowFile(allowPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "scoutlint:", err)
		return 2
	}

	mod, err := lint.Load(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "scoutlint:", err)
		return 2
	}
	for _, pkg := range mod.Pkgs {
		for _, terr := range pkg.TypeErrs {
			fmt.Fprintf(os.Stderr, "scoutlint: type error (continuing): %v\n", terr)
		}
	}

	diags := lint.RunModule(mod, analyzers)
	kept := allow.Filter(diags)
	for _, d := range kept {
		fmt.Println(d.String())
	}
	bad := len(kept) > 0
	if *rulesFlag == "" { // staleness is only meaningful with the full suite
		for _, e := range allow.Stale() {
			fmt.Fprintf(os.Stderr, "scoutlint: stale allowlist entry %s:%d (%s %s) matches nothing; delete it\n",
				allowPath, e.Line, e.Rule, e.Path)
			bad = true
		}
	}
	if bad {
		return 1
	}
	fmt.Printf("scoutlint: %d analyzer(s), %d package(s), clean (%d suppressed)\n",
		len(analyzers), len(mod.Pkgs), len(diags)-len(kept))
	return 0
}
