// Command scoutlint runs the repo's static-analysis suite (internal/lint):
// analyzers that machine-check the path invariants the paper establishes at
// path-creation time — virtual-clock determinism, the typed attr.Name
// vocabulary, data-path error discipline, lock/callback hygiene, and no
// silently dropped errors.
//
// Usage:
//
//	go run ./cmd/scoutlint ./...
//
// Findings print as "file:line: [rule] message" and make the exit status
// nonzero; -why adds the data-path call chain that makes an interprocedural
// finding reachable. Suppressions live in .scoutlint-allow at the module
// root; stale suppressions (matching nothing) and entries naming unknown
// rules are themselves errors so the file stays an honest record. -graph
// dumps the shared data-path call graph in a stable text form.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"scout/internal/lint"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		allowFlag  = flag.String("allow", "", "allowlist file (default <module root>/.scoutlint-allow)")
		rulesFlag  = flag.String("rules", "", "comma-separated analyzer subset (default: all)")
		listFlag   = flag.Bool("list", false, "list analyzers and exit")
		whyFlag    = flag.Bool("why", false, "print the data-path call chain under each interprocedural finding")
		graphFlag  = flag.String("graph", "", "dump the data-path call graph to the given file ('-' for stdout) and exit")
		timingFlag = flag.Bool("timing", false, "print per-analyzer wall time")
	)
	flag.Parse()

	analyzers := lint.All()
	if *listFlag {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *rulesFlag != "" {
		var err error
		analyzers, err = lint.ByName(*rulesFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, "scoutlint:", err)
			return 2
		}
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "scoutlint:", err)
		return 2
	}
	root, err := lint.FindModuleRoot(wd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "scoutlint:", err)
		return 2
	}

	allowPath := *allowFlag
	if allowPath == "" {
		allowPath = filepath.Join(root, ".scoutlint-allow")
	}
	allow, err := lint.ParseAllowFile(allowPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "scoutlint:", err)
		return 2
	}
	if unknown := allow.UnknownRules(lint.All()); len(unknown) > 0 {
		for _, e := range unknown {
			fmt.Fprintf(os.Stderr, "scoutlint: allowlist entry %s:%d names unknown rule %q; fix or delete it\n",
				allowPath, e.Line, e.Rule)
		}
		return 1
	}

	mod, err := lint.Load(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "scoutlint:", err)
		return 2
	}
	for _, pkg := range mod.Pkgs {
		for _, terr := range pkg.TypeErrs {
			fmt.Fprintf(os.Stderr, "scoutlint: type error (continuing): %v\n", terr)
		}
	}

	if *graphFlag != "" {
		out := os.Stdout
		if *graphFlag != "-" {
			f, err := os.Create(*graphFlag)
			if err != nil {
				fmt.Fprintln(os.Stderr, "scoutlint:", err)
				return 2
			}
			defer f.Close()
			out = f
		}
		if err := mod.Graph().Dump(out); err != nil {
			fmt.Fprintln(os.Stderr, "scoutlint:", err)
			return 2
		}
		return 0
	}

	var now func() time.Time
	if *timingFlag {
		now = time.Now
	}
	diags, timings := lint.RunModuleTimed(mod, analyzers, now)
	kept := allow.Filter(diags)
	for _, d := range kept {
		fmt.Println(d.String())
		if *whyFlag {
			for _, frame := range d.Chain {
				fmt.Printf("    %s\n", frame)
			}
		}
	}
	for _, t := range timings {
		fmt.Fprintf(os.Stderr, "scoutlint: timing %-14s %8.1fms\n", t.Name, float64(t.Elapsed.Microseconds())/1000)
	}
	bad := len(kept) > 0
	if *rulesFlag == "" { // staleness is only meaningful with the full suite
		for _, e := range allow.Stale() {
			fmt.Fprintf(os.Stderr, "scoutlint: stale allowlist entry %s:%d (%s %s) matches nothing; delete it\n",
				allowPath, e.Line, e.Rule, e.Path)
			bad = true
		}
	}
	if bad {
		return 1
	}
	fmt.Printf("scoutlint: %d analyzer(s), %d package(s), clean (%d suppressed)\n",
		len(analyzers), len(mod.Pkgs), len(diags)-len(kept))
	return 0
}
