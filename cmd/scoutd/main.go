// scoutd boots the Scout MPEG appliance (the router graph of Figure 9),
// streams one of the paper's clips into it, and reports what the kernel
// did: paths created, classification decisions, per-path CPU, deadlines.
//
// Usage:
//
//	scoutd -clip Neptune -frames 300          # cost-model decode
//	scoutd -clip Canyon -real -frames 60      # real pixel decode
//	scoutd -clip Neptune -frames 300 -flood   # with a ping -f flood
//	scoutd -sched rr -prio 2                  # round-robin instead of EDF
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"scout/internal/appliance"
	"scout/internal/host"
	"scout/internal/mpeg"
	"scout/internal/netdev"
	"scout/internal/proto/inet"
	"scout/internal/proto/mflow"
	"scout/internal/routers"
	"scout/internal/sim"
)

func main() {
	clipName := flag.String("clip", "Neptune", "clip: Flower|Neptune|RedsNightmare|Canyon")
	frames := flag.Int("frames", 300, "frames to play (0 = whole clip)")
	real := flag.Bool("real", false, "really encode/decode pixels (slow) instead of the cost model")
	flood := flag.Bool("flood", false, "add a ping -f ICMP flood from a second host")
	schedPolicy := flag.String("sched", "edf", "video path scheduling: edf|rr")
	prio := flag.Int("prio", 2, "RR priority when -sched rr")
	qlen := flag.Int("qlen", 32, "path queue length")
	maxRate := flag.Bool("maxrate", false, "stream at maximum rate instead of the clip frame rate")
	coalesce := flag.Bool("coalesce", false, "coalesce same-instant receive interrupts into bursts")
	flag.Parse()

	clip, ok := mpeg.ClipByName(*clipName)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown clip %q\n", *clipName)
		os.Exit(2)
	}
	if *frames > 0 && *frames < clip.Frames {
		clip.Frames = *frames
	}

	eng := sim.New(1)
	link := netdev.NewLink(eng, netdev.LinkConfig{BitsPerSec: 10_000_000, Delay: 20 * time.Microsecond})
	cfg := appliance.DefaultConfig()
	if *maxRate {
		cfg.RefreshHz = 2000
	}
	cfg.CoalesceRx = *coalesce
	k, err := appliance.Boot(eng, link, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("booted Scout appliance %s (%d routers)\n", k.Cfg.Addr, len(k.Graph.Routers()))

	src := host.New(link, netdev.MAC{2, 0, 0, 0, 0, 0x20}, inet.IP(10, 0, 0, 20))
	fps := clip.FPS
	if *maxRate {
		fps = 2000
	}
	sinkFrames := clip.Frames
	if *maxRate {
		sinkFrames = 0 // unbounded sink: throughput, not deadlines
	}
	p, lport, err := k.CreateVideoPath(&appliance.VideoAttrs{
		Source:    inet.Participants{RemoteAddr: src.Addr, RemotePort: 7000},
		FPS:       fps,
		Frames:    sinkFrames,
		CostModel: !*real,
		QueueLen:  *qlen,
		Sched:     *schedPolicy,
		Priority:  *prio,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("created %v (local port %d)\n", p, lport)

	vs, err := host.NewSource(src, host.SourceConfig{
		Clip: clip, SrcPort: 7000, CostOnly: !*real, MaxRate: *maxRate,
		QScale: 3, SearchRange: 4, Seed: 11,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("source ready: %d frames, %d packets\n", vs.NumFrames(), vs.NumPackets())
	eng.At(0, func() { vs.Start(k.Cfg.Addr, lport) })

	if *flood {
		ping := host.New(link, netdev.MAC{2, 0, 0, 0, 0, 0x21}, inet.IP(10, 0, 0, 21))
		f := ping.FloodEchoAdaptive(k.Cfg.Addr, 1, 8, 30*time.Microsecond)
		defer func() {
			fmt.Printf("flood: %d sent, %d replied (%.0f pps achieved)\n", f.Sent, f.Replies, f.Rate())
		}()
	}

	// Run until the sink accounted for every frame, or a cap.
	sink := k.Display.Sink(p, "DISPLAY")
	cap := eng.Now().Add(10 * time.Minute)
	for eng.Now() < cap {
		if *maxRate {
			if sink.Displayed() >= int64(vs.NumFrames()) {
				break
			}
		} else if sink.Done() {
			break
		}
		eng.RunFor(250 * time.Millisecond)
	}

	elapsed := eng.Now().Seconds()
	fmt.Printf("\n--- after %.2fs of virtual time ---\n", elapsed)
	if *maxRate {
		fmt.Printf("displayed %d frames → %.1f fps (max-rate run; deadlines not meaningful)\n",
			sink.Displayed(), float64(sink.Displayed())/elapsed)
	} else {
		fmt.Printf("displayed %d frames, missed %d deadlines → %.1f fps\n",
			sink.Displayed(), sink.Missed(), float64(sink.Displayed())/elapsed)
	}
	fl, _ := mflow.StatsOf(p, "MFLOW")
	fmt.Printf("MFLOW: delivered=%d gaps=%d acks=%d (source RTT≈%v)\n",
		fl.Delivered, fl.Gaps, fl.AcksSent, vs.RTTEWMA)
	pk, fr, errs, _ := routers.MPEGStats(p, "MPEG")
	fmt.Printf("MPEG: packets=%d frames=%d errors=%d\n", pk, fr, errs)
	fmt.Printf("path: CPU=%v EWMA=%v/execution mem=%dB\n", p.CPUTime(), p.ExecEWMA(), p.MemoryBytes())
	fmt.Printf("classifier: %+v\n", k.ETH.Stats())
	st := k.CPU.Stats()
	fmt.Printf("CPU: busy=%v irq=%v dispatches=%d interrupts=%d\n",
		st.Busy, st.IRQ, st.Dispatches, st.Interrupts)
	ireq, irep := k.ICMP.Stats()
	if ireq > 0 {
		fmt.Printf("ICMP path: %d requests processed, %d replies, input queue dropped %d early\n",
			ireq, irep, k.ICMP.Path().Q[2].Dropped())
	}
}
