// webdemo boots the Figure 3 web-server appliance, populates its UFS
// filesystem, and fetches pages from it with a number of concurrent
// clients, reporting per-request latency and where the time went (network
// path vs storage path).
//
// Usage:
//
//	webdemo -clients 4 -size 32768 [-loss 0.02]
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"scout/internal/host"
	"scout/internal/netdev"
	"scout/internal/proto/inet"
	"scout/internal/sim"
	"scout/internal/web"
)

func main() {
	clients := flag.Int("clients", 4, "concurrent clients")
	size := flag.Int("size", 32768, "file size in bytes")
	loss := flag.Float64("loss", 0, "link loss probability")
	flag.Parse()

	eng := sim.New(1)
	link := netdev.NewLink(eng, netdev.LinkConfig{
		BitsPerSec: 10_000_000,
		Delay:      100 * time.Microsecond,
		Loss:       *loss,
	})
	srv, err := web.BootServer(eng, link, web.DefaultServerConfig())
	if err != nil {
		log.Fatal(err)
	}
	body := strings.Repeat("0123456789abcdef", (*size+15)/16)[:*size]
	for i := 0; i < *clients; i++ {
		path := fmt.Sprintf("/www/file%d.bin", i)
		if err := srv.FS.WriteFile(path, []byte(body)); err != nil {
			log.Fatal(err)
		}
	}

	type result struct {
		took sim.Time
		ok   bool
	}
	results := make([]result, *clients)
	for i := 0; i < *clients; i++ {
		i := i
		h := host.New(link, netdev.MAC{2, 0, 0, 0, 1, byte(100 + i)}, inet.IP(10, 0, 0, byte(100+i)))
		start := eng.Now()
		c := h.DialTCP(srv.Cfg.Addr, uint16(srv.Cfg.Port), uint16(35000+i))
		c.OnConnect = func() {
			c.Send([]byte(fmt.Sprintf("GET /file%d.bin HTTP/1.0\r\n\r\n", i)))
		}
		c.OnClose = func() {
			if !results[i].ok {
				resp := string(c.Received)
				idx := strings.Index(resp, "\r\n\r\n")
				results[i] = result{
					took: sim.Time(eng.Now().Sub(start)),
					ok:   idx > 0 && resp[idx+4:] == body,
				}
			}
		}
	}
	eng.RunFor(2 * time.Minute)

	fmt.Printf("%d clients fetching %d bytes each (loss %.0f%%):\n", *clients, *size, *loss*100)
	okAll := true
	for i, r := range results {
		status := "OK"
		if !r.ok {
			status = "FAILED"
			okAll = false
		}
		fmt.Printf("  client %d: %-6s in %v\n", i, status, r.took.Duration())
	}
	st := srv.TCP.Stats()
	fmt.Printf("\nTCP: accepted=%d in=%d out=%d retransmits=%d resets=%d\n",
		st.Accepted, st.SegsIn, st.SegsOut, st.Retransmits, st.Resets)
	fmt.Printf("HTTP: %d requests, %d bytes out\n", srv.HTTP.Requests, srv.HTTP.BytesOut)
	fmt.Printf("storage: %v\n", srv.Disk)
	if !okAll {
		log.Fatal("some requests failed")
	}
}
