// mpegbench regenerates the paper's evaluation: every table and in-text
// experiment, printed next to the published numbers. See DESIGN.md for the
// experiment index and EXPERIMENTS.md for the recorded results.
//
// Usage:
//
//	mpegbench                  # run everything
//	mpegbench -run table1      # one experiment: micro|table1|table2|edf|admission|queues|ilp|loss|e10|overload|e12|e13|e14
//	mpegbench -edf-full        # EDF experiment at full clip lengths
//	mpegbench -run e10 -trace trace.json -metrics metrics.json
//	                           # per-stage breakdown + Perfetto trace dump
//	mpegbench -run e10 -e10-smoke
//	                           # CI-sized E10 (short clip, two load levels)
//	mpegbench -run overload -overload-smoke
//	                           # CI-sized E11 (short clip, one overcommit)
//	mpegbench -run e12 -e12-smoke
//	                           # fast-path differential at CI size
//	mpegbench -run e13 -e13-smoke
//	                           # multipath policy grid at CI size
//	mpegbench -run e14 -e14-smoke
//	                           # live path migration gate at CI size
//	mpegbench -run e15 [-e15-smoke]
//	                           # sharded-kernel scale sweep + shard-count
//	                           # invisibility gate (smoke = CI size)
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"scout/internal/exp"
	"scout/internal/mpeg"
)

func main() {
	which := flag.String("run", "all", "experiment: all|micro|table1|table2|edf|admission|queues|ilp|loss|e10|overload|e12|e13|e14|e15")
	edfFull := flag.Bool("edf-full", false, "run the EDF experiment at full clip lengths (1345/1758 frames)")
	e10Smoke := flag.Bool("e10-smoke", false, "run E10 at CI size (short clip, loads {0,2})")
	overloadSmoke := flag.Bool("overload-smoke", false, "run E11 at CI size (short clip, overcommit {1.5})")
	e12Smoke := flag.Bool("e12-smoke", false, "run E12 at CI size (short clip)")
	e13Smoke := flag.Bool("e13-smoke", false, "run E13 at CI size (short clip)")
	e14Smoke := flag.Bool("e14-smoke", false, "run E14 at CI size (short clip)")
	e15Smoke := flag.Bool("e15-smoke", false, "run E15 at CI size (dozens of paths, shards {1,2})")
	traceOut := flag.String("trace", "", "write E10's highest-load run as Chrome trace_event JSON to this file")
	metricsOut := flag.String("metrics", "", "write E10's highest-load metrics JSON (pathtop input) to this file")
	flag.Parse()

	w := os.Stdout
	run := func(name string, fn func()) {
		if *which != "all" && *which != name {
			return
		}
		start := time.Now()
		fn()
		fmt.Fprintf(w, "(%s took %v wall-clock)\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	run("micro", func() {
		k, err := exp.NewMicroKernel()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		f, err := exp.MeasureFootprint(k)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		exp.PrintFootprint(w, f)
		fmt.Fprintln(w, "(run `go test -bench='BenchmarkE1|BenchmarkE2' .` for the")
		fmt.Fprintln(w, " wall-clock path-creation and demux microbenchmarks)")
	})

	run("table1", func() {
		exp.PrintTable1(w, exp.RunTable1(nil))
	})

	run("table2", func() {
		exp.PrintTable2(w, exp.RunTable2())
	})

	run("edf", func() {
		cfg := exp.EDFConfig{NeptuneFrames: 400, CanyonFrames: 600}
		if *edfFull {
			cfg = exp.EDFConfig{}
		}
		rows := exp.RunEDF(cfg, []string{"edf", "rr"}, []int{16, 64, 128, 256, 512})
		exp.PrintEDF(w, rows)
	})

	run("admission", func() {
		exp.PrintAdmission(w, exp.RunAdmission(400))
	})

	run("queues", func() {
		exp.PrintQueueSizing(w, exp.RunQueueSizing(nil, nil))
	})

	run("loss", func() {
		exp.PrintLoss(w, mpeg.Neptune.Name, exp.RunLoss(mpeg.Neptune))
	})

	run("e10", func() {
		cfg := exp.E10Config{}
		if *e10Smoke {
			cfg = exp.SmokeE10Config()
		}
		rows := exp.RunE10(cfg)
		exp.PrintE10(w, cfg, rows)
		if len(rows) == 0 {
			return
		}
		last := rows[len(rows)-1]
		writeOut := func(path, what string, write func(io.Writer) error) {
			if path == "" {
				return
			}
			var b bytes.Buffer
			if err := write(&b); err == nil {
				err = os.WriteFile(path, b.Bytes(), 0o644)
				if err == nil {
					fmt.Fprintf(w, "wrote %s to %s\n", what, path)
					return
				}
				fmt.Fprintln(os.Stderr, err)
			} else {
				fmt.Fprintln(os.Stderr, err)
			}
			os.Exit(1)
		}
		writeOut(*traceOut, "trace_event JSON (load at ui.perfetto.dev)", last.Tracer.WriteTrace)
		writeOut(*metricsOut, "metrics JSON (view with pathtop)", last.Tracer.WriteMetricsJSON)
	})

	run("overload", func() {
		cfg := exp.E11Config{}
		if *overloadSmoke {
			cfg = exp.SmokeOverloadConfig()
		}
		exp.PrintE11(w, exp.RunE11(cfg))
	})

	run("e12", func() {
		cfg := exp.E12Config{}
		if *e12Smoke {
			cfg = exp.SmokeE12Config()
		}
		res := exp.RunE12(cfg)
		exp.PrintE12(w, res)
		if !res.Match() {
			os.Exit(1)
		}
	})

	run("e13", func() {
		cfg := exp.E13Config{}
		if *e13Smoke {
			cfg = exp.SmokeE13Config()
		}
		exp.PrintE13(w, exp.RunE13(cfg))
	})

	run("e14", func() {
		cfg := exp.E14Config{}
		if *e14Smoke {
			cfg = exp.SmokeE14Config()
		}
		res := exp.RunE14(cfg)
		exp.PrintE14(w, res)
		if !res.Ok() {
			os.Exit(1)
		}
	})

	run("e15", func() {
		cfg := exp.E15Config{}
		if *e15Smoke {
			cfg = exp.SmokeE15Config()
		}
		start := time.Now()
		cfg.Wall = func() time.Duration { return time.Since(start) }
		res := exp.RunE15(cfg)
		exp.PrintE15(w, res)
		if !res.Match() {
			os.Exit(1)
		}
		// The speedup target only means something on a multicore host; CI
		// and laptops assert it, single-CPU containers report honestly.
		if res.CPUs >= 4 {
			if sp := res.SpeedupAt(4); sp > 0 && sp < 3.0 {
				fmt.Fprintf(os.Stderr, "e15: speedup at 4 shards %.2fx, want >= 3x\n", sp)
				os.Exit(1)
			}
		}
	})

	run("ilp", func() {
		on := exp.RunILP(true, 100)
		off := exp.RunILP(false, 100)
		fmt.Fprintf(w, "§4.1 ILP transformation (UDP checksum fused into MPEG read):\n")
		fmt.Fprintf(w, "per-packet path CPU: %v without, %v with → %v saved\n", off, on, off-on)
	})
}
