// Wall-time guard for the scoutlint suite. The 12 analyzers (and the
// data-path call graph they share) run on every `make check` and in the
// tier-1 self-check, so whole-repo analysis must stay interactive: the
// conservative interface resolution and field-based points-to are quadratic
// in the wrong hands, and this file is what notices. It lives at the module
// root (not internal/) because measuring wall time needs the real clock,
// which simclock bans everywhere under internal/.
package scout_test

import (
	"testing"
	"time"

	"scout/internal/lint"
)

// TestScoutlintWallTime fails when one full load+analyze pass over the
// repository exceeds 10 seconds — the budget promised in DESIGN.md.
func TestScoutlintWallTime(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-repo analysis; skipped with -short")
	}
	root, err := lint.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	diags, err := lint.Run(root, lint.All())
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	_ = diags // findings are the self-check's business; here only time matters
	if elapsed > 10*time.Second {
		t.Fatalf("full scoutlint pass took %v, budget is 10s", elapsed)
	}
	t.Logf("full scoutlint pass: %v", elapsed)
}

// BenchmarkScoutlint measures one full suite pass (load + type-check +
// graph + 12 analyzers) so benchdiff catches analysis slowdowns the same
// way it catches data-path ones.
func BenchmarkScoutlint(b *testing.B) {
	root, err := lint.FindModuleRoot(".")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lint.Run(root, lint.All()); err != nil {
			b.Fatal(err)
		}
	}
}
