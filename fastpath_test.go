// Fast-path gates: the flow cache must never misroute — for any frame the
// cached classification agrees with the full hop-by-hop walk (it may miss,
// it may not lie) — and the steady-state receive path must not allocate.
// These are the acceptance tests of the fast-path engine (DESIGN.md, "Fast
// path & flow cache"); E12 in mpegbench is the end-to-end counterpart.
package scout_test

import (
	"encoding/binary"
	"math/rand"
	"testing"
	"time"

	"scout/internal/appliance"
	"scout/internal/core"
	"scout/internal/exp"
	"scout/internal/fbuf"
	"scout/internal/mpeg"
	"scout/internal/msg"
	"scout/internal/netdev"
	"scout/internal/proto/eth"
	"scout/internal/proto/inet"
	"scout/internal/proto/ip"
	"scout/internal/proto/mflow"
	"scout/internal/proto/udp"
)

// diffClassify asserts the differential property on one frame: the cached
// classifier and the reference walk agree on the path (or both fail).
func diffClassify(t *testing.T, k *appliance.Kernel, m *msg.Msg) {
	t.Helper()
	pc, ec := k.ETH.Classify(m)
	pu, eu := k.ETH.ClassifyUncached(m)
	if pc != pu || (ec == nil) != (eu == nil) {
		t.Fatalf("classification diverges: cached (%p, %v) vs walk (%p, %v)\nframe: % x",
			pc, ec, pu, eu, m.Bytes())
	}
	m.Free()
}

// TestFlowCacheDifferential drives randomized header mutations and
// mid-stream path destroy/recreate through both classifiers. Mutations hit
// every classification decision: destination MAC (not for us), ether type
// (not IP), IP header bytes (checksum breaks → cache-ineligible), ports
// (different flow → miss and usually no path). A destroyed path must vanish
// from the cache before the next lookup — a hit on a dead path is a
// misroute, the one failure the cache may never produce.
func TestFlowCacheDifferential(t *testing.T) {
	k, err := exp.NewMicroKernel()
	if err != nil {
		t.Fatal(err)
	}
	if k.Dev.Flows == nil {
		t.Fatal("flow cache disabled in default boot")
	}
	testR, _ := k.Graph.Router("TEST")
	p, err := k.Graph.CreatePath(testR, exp.TestPathAttrs(9300))
	if err != nil {
		t.Fatal(err)
	}
	template := exp.BuildVideoFrame(k, 9300, 256).CopyOut()
	hdrLen := eth.HeaderLen + ip.HeaderLen + udp.HeaderLen

	rng := rand.New(rand.NewSource(7))
	mutate := func() *msg.Msg {
		f := make([]byte, len(template))
		copy(f, template)
		for n := rng.Intn(4); n > 0; n-- {
			f[rng.Intn(hdrLen)] ^= byte(1 + rng.Intn(255))
		}
		return msg.New(f)
	}
	pristine := func() *msg.Msg {
		f := make([]byte, len(template))
		copy(f, template)
		return msg.New(f)
	}

	for i := 0; i < 4000; i++ {
		diffClassify(t, k, mutate())
		if i%500 == 499 {
			// Mid-stream churn: the path dies, the binding goes away, and
			// any cached entry for its flow must die with it.
			p.Delete()
			diffClassify(t, k, pristine())
			if p, err = k.Graph.CreatePath(testR, exp.TestPathAttrs(9300)); err != nil {
				t.Fatal(err)
			}
			diffClassify(t, k, pristine())
		}
	}

	st := k.Dev.Flows.Stats()
	if st.Hits == 0 || st.Inserts == 0 {
		t.Errorf("cache never engaged: %+v", st)
	}
	if st.Invalidations == 0 {
		t.Errorf("path churn caused no invalidations: %+v", st)
	}
}

// TestFlowCacheDifferentialUnderCorruption repeats the differential check on
// frames that crossed a real link with an adversarial fault plan: corruption
// (a flipped byte past the Ethernet header), duplication and reordering. The
// device's receive hook is replaced by the checker, so every delivered frame
// — damaged or not — is classified both ways.
func TestFlowCacheDifferentialUnderCorruption(t *testing.T) {
	k, err := exp.NewMicroKernel()
	if err != nil {
		t.Fatal(err)
	}
	testR, _ := k.Graph.Router("TEST")
	if _, err := k.Graph.CreatePath(testR, exp.TestPathAttrs(9300)); err != nil {
		t.Fatal(err)
	}
	template := exp.BuildVideoFrame(k, 9300, 256).CopyOut()

	k.Link.InjectFaults(netdev.FaultPlan{Corrupt: 0.5, Dup: 0.1, Reorder: 0.1})
	sender := netdev.NewDevice(k.Link, netdev.MAC{2, 0, 0, 0, 0, 0x77}, nil)

	seen := 0
	k.Dev.OnReceive = func(m *msg.Msg) {
		seen++
		diffClassify(t, k, m)
	}
	for i := 0; i < 500; i++ {
		f := make([]byte, len(template))
		copy(f, template)
		mflow.Header{Kind: mflow.KindData, Seq: uint32(i + 1)}.Put(
			f[eth.HeaderLen+ip.HeaderLen+udp.HeaderLen:])
		sender.Transmit(k.Cfg.MAC, msg.New(f))
	}
	// Bounded run: the kernel's display refresh ticker keeps the event queue
	// non-empty forever, so Run() would never return. A virtual second is
	// orders of magnitude past the last delivery.
	k.Eng.RunFor(time.Second)
	if seen < 500 {
		t.Fatalf("only %d frames delivered", seen)
	}
}

// buildContinuationFrame assembles a full Ethernet frame carrying a
// mid-frame ALF continuation packet: it advances the MPEG header decoder's
// bit count without completing a frame, so the whole ETH→IP→UDP→MFLOW→MPEG
// chain runs with no per-frame work (no display.Frame) — the steady state
// the zero-alloc gate measures. The MFLOW header is (re)written by the
// caller per injection, seq advancing.
func buildContinuationFrame(k *appliance.Kernel, dstPort uint16) []byte {
	alf := (&mpeg.Packet{
		FrameNo: 1, Kind: mpeg.FrameI, QScale: 2, MBW: 4, MBH: 4,
		MBStart: 0, MBCount: 0, TotalMB: 16, Data: make([]byte, 64),
	}).Marshal()
	total := eth.HeaderLen + ip.HeaderLen + udp.HeaderLen + mflow.HeaderLen + len(alf)
	f := make([]byte, total)
	eth.Header{Dst: k.Cfg.MAC, Src: netdev.MAC{2, 0, 0, 0, 0, 0x20}, Type: inet.EtherTypeIP}.Put(f)
	ip.Header{
		TotalLen: uint16(total - eth.HeaderLen),
		ID:       1,
		TTL:      64,
		Proto:    inet.ProtoUDP,
		Src:      inet.Addr{10, 0, 0, 20},
		Dst:      k.Cfg.Addr,
	}.Put(f[eth.HeaderLen:])
	udp.Header{
		SrcPort: 7000, DstPort: dstPort,
		Length: uint16(udp.HeaderLen + mflow.HeaderLen + len(alf)),
	}.Put(f[eth.HeaderLen+ip.HeaderLen:])
	// Zero UDP checksum = unchecked: the gate measures delivery, and the
	// checksummed variant is covered by the E4/E12 equivalence runs.
	binary.BigEndian.PutUint16(f[eth.HeaderLen+ip.HeaderLen+6:], 0)
	copy(f[eth.HeaderLen+ip.HeaderLen+udp.HeaderLen+mflow.HeaderLen:], alf)
	return f
}

// TestReceivePathZeroAlloc is the zero-alloc gate: one steady-state frame
// through the fused ETH→IP→UDP→MFLOW→MPEG receive chain, from an fbuf pool
// buffer, must not touch the heap. Acks are pushed out of the measured loop
// (they recycle through their own pool and are exercised elsewhere); with
// runs=100 the integer average tolerates stray GC-clears of the sync.Pools
// without masking a real per-frame allocation.
func TestReceivePathZeroAlloc(t *testing.T) {
	k, err := exp.NewMicroKernel()
	if err != nil {
		t.Fatal(err)
	}
	k.MFLOW.AckEvery = 1 << 30
	p, lport, err := k.CreateVideoPath(&appliance.VideoAttrs{
		Source:    inet.Participants{RemoteAddr: inet.Addr{10, 0, 0, 20}, RemotePort: 7000},
		FPS:       30,
		CostModel: true,
		QueueLen:  32,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !p.Fused() {
		t.Fatal("video path not fused")
	}
	tmpl := buildContinuationFrame(k, uint16(lport))

	pool := fbuf.NewPool(len(tmpl), 64, 8, 0)
	seq := uint32(0)
	inject := func() {
		m, err := pool.Get(len(tmpl))
		if err != nil {
			t.Fatal(err)
		}
		b := m.Bytes()
		copy(b, tmpl)
		seq++
		mflow.Header{Kind: mflow.KindData, Seq: seq}.Put(
			b[eth.HeaderLen+ip.HeaderLen+udp.HeaderLen:])
		if err := p.Inject(core.BWD, m); err != nil {
			t.Fatal(err)
		}
	}
	inject() // prime decoder state and pools before measuring
	if allocs := testing.AllocsPerRun(100, inject); allocs != 0 {
		t.Errorf("steady-state receive allocates %.0f times per frame, want 0", allocs)
	}
}

// TestClassifyAllocFree locks in the heap-escape audit of the classification
// walk (eth/ip/udp Parse and Peek): neither the cache-hit lookup nor the
// full reference walk may allocate per frame.
func TestClassifyAllocFree(t *testing.T) {
	k, err := exp.NewMicroKernel()
	if err != nil {
		t.Fatal(err)
	}
	testR, _ := k.Graph.Router("TEST")
	if _, err := k.Graph.CreatePath(testR, exp.TestPathAttrs(9300)); err != nil {
		t.Fatal(err)
	}
	m := exp.BuildVideoFrame(k, 9300, 1024)
	if _, err := k.ETH.Classify(m); err != nil { // warm the cache
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		if _, err := k.ETH.Classify(m); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("cache-hit classify allocates %.0f times per frame, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		if _, err := k.ETH.ClassifyUncached(m); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("classification walk allocates %.0f times per frame, want 0", allocs)
	}
}
