// mpegplayer: the paper's demonstration application end to end with the
// real codec — a video source on one machine streams an MPEG-encoded
// synthetic clip over UDP/MFLOW to a Scout appliance, whose MPEG path
// decodes, dithers, and displays the frames on the simulated framebuffer.
// The last displayed frame is rendered as ASCII art so you can see that
// real pixels made the trip.
//
// Run: go run ./examples/mpegplayer [-frames N] [-w W] [-h H]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"scout/internal/appliance"
	"scout/internal/host"
	"scout/internal/mpeg"
	"scout/internal/netdev"
	"scout/internal/proto/inet"
	"scout/internal/proto/mflow"
	"scout/internal/routers"
	"scout/internal/sim"
)

func main() {
	frames := flag.Int("frames", 30, "frames to play")
	width := flag.Int("w", 96, "clip width (multiple of 16)")
	height := flag.Int("h", 64, "clip height (multiple of 16)")
	flag.Parse()

	eng := sim.New(1)
	link := netdev.NewLink(eng, netdev.LinkConfig{BitsPerSec: 10_000_000, Delay: 100 * time.Microsecond})
	k, err := appliance.Boot(eng, link, appliance.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	src := host.New(link, netdev.MAC{2, 0, 0, 0, 0, 0x77}, inet.IP(10, 0, 0, 77))

	clip := mpeg.ClipSpec{
		Name: "Demo", Frames: *frames, W: *width, H: *height, FPS: 30, GOP: 6,
		Scene: mpeg.SceneConfig{W: *width, H: *height, Detail: 0.5, Motion: 1.2, Objects: 2, Seed: 7},
	}

	// Create the MPEG path (DISPLAY→MPEG→MFLOW→UDP→IP→ETH) with real
	// pixel decode.
	p, lport, err := k.CreateVideoPath(&appliance.VideoAttrs{
		Source:   inet.Participants{RemoteAddr: src.Addr, RemotePort: 7000},
		FPS:      clip.FPS,
		Frames:   clip.Frames,
		QueueLen: 32,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("video path:", p)

	// The source really encodes the synthetic scene (motion estimation,
	// DCT, quantisation, entropy coding) into ALF packets.
	vs, err := host.NewSource(src, host.SourceConfig{
		Clip: clip, SrcPort: 7000, QScale: 3, SearchRange: 4, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("encoded %d frames into %d packets\n", vs.NumFrames(), vs.NumPackets())
	eng.At(0, func() { vs.Start(k.Cfg.Addr, lport) })

	// Play.
	eng.RunFor(time.Duration(*frames/30+3) * time.Second)

	sink := k.Display.Sink(p, "DISPLAY")
	fmt.Printf("displayed %d frames, missed %d deadlines\n", sink.Displayed(), sink.Missed())
	fl, _ := mflow.StatsOf(p, "MFLOW")
	fmt.Printf("MFLOW: delivered %d packets, %d acks, RTT≈%v\n", fl.Delivered, fl.AcksSent, vs.RTTEWMA)
	pk, fr, _, _ := routers.MPEGStats(p, "MPEG")
	fmt.Printf("MPEG: %d packets → %d frames; path CPU %v (EWMA %v/execution)\n",
		pk, fr, p.CPUTime(), p.ExecEWMA())

	// Render the framebuffer (RGB332) as ASCII luminance art.
	fmt.Println("\nlast displayed frame:")
	renderASCII(k.FB.Framebuffer(), k.Cfg.DisplayW, *width, *height)
}

// renderASCII draws the top-left w×h of the framebuffer.
func renderASCII(fb []byte, stride, w, h int) {
	const ramp = " .:-=+*#%@"
	for y := 0; y < h; y += 2 { // halve vertically for terminal aspect
		line := make([]byte, w)
		for x := 0; x < w; x++ {
			px := fb[y*stride+x]
			// RGB332 → luminance.
			r := int(px>>5) * 255 / 7
			g := int(px>>2&7) * 255 / 7
			b := int(px&3) * 255 / 3
			lum := (299*r + 587*g + 114*b) / 1000
			line[x] = ramp[lum*(len(ramp)-1)/255]
		}
		fmt.Println(string(line))
	}
}
