// Quickstart: boot a Scout appliance kernel, create an explicit path through
// TEST→UDP→IP→ETH, and push a datagram through it from a peer host — the
// smallest end-to-end use of the path architecture.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"scout/internal/appliance"
	"scout/internal/attr"
	"scout/internal/host"
	"scout/internal/netdev"
	"scout/internal/proto/inet"
	"scout/internal/sim"
)

func main() {
	// A virtual world: a 10 Mb/s Ethernet with two machines on it.
	eng := sim.New(1)
	link := netdev.NewLink(eng, netdev.LinkConfig{
		BitsPerSec: 10_000_000,
		Delay:      50 * time.Microsecond,
	})

	// Machine 1: the Scout appliance (the router graph of Figure 9).
	k, err := appliance.Boot(eng, link, appliance.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	// Machine 2: a plain traffic endpoint.
	peer := host.New(link, netdev.MAC{2, 0, 0, 0, 0, 0x99}, inet.IP(10, 0, 0, 99))

	// Create a path: the TEST router sits above UDP, so the invariants
	// (attributes) name the remote participants and the local port, and
	// path creation walks TEST→UDP→IP→ETH, freezing a routing decision at
	// each router (§3.3 of the paper).
	testR, _ := k.Graph.Router("TEST")
	a := attr.New().
		Set(attr.NetParticipants, inet.Participants{RemoteAddr: peer.Addr, RemotePort: 7000}).
		Set(inet.AttrLocalPort, 4000)
	p, err := k.Graph.CreatePath(testR, a)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("created", p)
	for i, s := range p.Stages() {
		fmt.Printf("  stage %d: %s\n", i, s.Router.Name)
	}

	// The peer sends a datagram to the path's port. The ETH classifier
	// demultiplexes it into this path's input queue at interrupt time,
	// and the TEST router's thread runs the path.
	eng.At(0, func() {
		peer.SendUDP(k.Cfg.Addr, 4000, 7000, []byte("hello, path!"))
	})
	eng.RunFor(time.Second)

	fmt.Printf("TEST router received %d message(s), %d bytes\n", k.Test.Received, k.Test.Bytes)
	fmt.Printf("path executed %d message(s), CPU charged: %v\n", p.Msgs[1], p.CPUTime())
	fmt.Printf("classifier: %+v\n", k.ETH.Stats())
}
