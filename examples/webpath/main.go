// webpath: the paper's Figure 3 router graph as a running web server. Paths
// cross the system both ways: each TCP connection is its own freshly
// created path HTTP→TCP→IP→ETH, and file contents travel the storage path
// HTTP→VFS→UFS→SCSI with real seek and transfer latency.
//
// Run: go run ./examples/webpath
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"scout/internal/host"
	"scout/internal/netdev"
	"scout/internal/proto/inet"
	"scout/internal/sim"
	"scout/internal/web"
)

func main() {
	eng := sim.New(1)
	link := netdev.NewLink(eng, netdev.LinkConfig{BitsPerSec: 10_000_000, Delay: 100 * time.Microsecond})
	srv, err := web.BootServer(eng, link, web.DefaultServerConfig())
	if err != nil {
		log.Fatal(err)
	}

	// Populate the on-disk filesystem (superblock, bitmap, inodes and
	// data blocks all live on the simulated SCSI disk).
	pages := map[string]string{
		"/www/index.html":   "<html><h1>Scout web server</h1><a href=/paths.html>paths</a></html>",
		"/www/paths.html":   "<html>every connection is an explicit path</html>",
		"/www/data/big.txt": strings.Repeat("all work and no play makes a layered system slow\n", 800),
	}
	for p, body := range pages {
		if err := srv.FS.WriteFile(p, []byte(body)); err != nil {
			log.Fatal(err)
		}
	}
	names, _ := srv.FS.List("/www")
	fmt.Println("document root contains:", names)

	client := host.New(link, netdev.MAC{2, 0, 0, 0, 0, 0x88}, inet.IP(10, 0, 0, 88))
	fetch := func(srcPort uint16, path string) {
		start := eng.Now()
		var doneAt sim.Time
		c := client.DialTCP(srv.Cfg.Addr, uint16(srv.Cfg.Port), srcPort)
		c.OnConnect = func() { c.Send([]byte("GET " + path + " HTTP/1.0\r\n\r\n")) }
		c.OnClose = func() {
			if doneAt == 0 {
				doneAt = eng.Now()
			}
		}
		eng.RunFor(5 * time.Second)
		resp := string(c.Received)
		status := resp
		if i := strings.Index(resp, "\r\n"); i > 0 {
			status = resp[:i]
		}
		body := ""
		if i := strings.Index(resp, "\r\n\r\n"); i > 0 {
			body = resp[i+4:]
		}
		took := doneAt.Sub(start)
		fmt.Printf("GET %-16s → %s (%d body bytes, %v)\n", path, status, len(body), took)
	}

	fetch(40001, "/")
	fetch(40002, "/paths.html")
	fetch(40003, "/data/big.txt")
	fetch(40004, "/missing")

	st := srv.TCP.Stats()
	fmt.Printf("\nTCP: %d connections accepted, %d segs in, %d segs out, %d retransmits\n",
		st.Accepted, st.SegsIn, st.SegsOut, st.Retransmits)
	fmt.Printf("HTTP: %d requests (%d errors), %d bytes out\n", srv.HTTP.Requests, srv.HTTP.Errors, srv.HTTP.BytesOut)
	fmt.Printf("disk: %v\n", srv.Disk)
}
