// shellbox: drive the SHELL router over the network (§4.1). A remote host
// sends text commands to the appliance's UDP shell port; each mpeg command
// maps into a pathCreate on the DISPLAY router, exactly as the paper
// describes, and the reply names the created path and the UDP port the
// video source should send to. The video then plays over the new path.
//
// Run: go run ./examples/shellbox
package main

import (
	"fmt"
	"log"
	"strconv"
	"strings"
	"time"

	"scout/internal/appliance"
	"scout/internal/host"
	"scout/internal/mpeg"
	"scout/internal/netdev"
	"scout/internal/proto/inet"
	"scout/internal/sim"
)

func main() {
	eng := sim.New(1)
	link := netdev.NewLink(eng, netdev.LinkConfig{BitsPerSec: 10_000_000, Delay: 100 * time.Microsecond})
	k, err := appliance.Boot(eng, link, appliance.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	h := host.New(link, netdev.MAC{2, 0, 0, 0, 0, 0xaa}, inet.IP(10, 0, 0, 42))

	shellPort := uint16(k.Cfg.ShellPort)
	send := func(cmd string) string {
		var reply string
		h.Command(k.Cfg.Addr, shellPort, 6200, cmd, func(r string) { reply = r })
		eng.RunFor(200 * time.Millisecond)
		fmt.Printf("shell> %-28s → %s\n", cmd, reply)
		return reply
	}

	// Ask SHELL to set up a 30-frame video path; the source will send
	// from our port 7000.
	reply := send("mpeg 7000 30 30 edf 0 32")
	fields := strings.Fields(reply)
	if len(fields) != 3 || fields[0] != "OK" {
		log.Fatalf("unexpected shell reply %q", reply)
	}
	pid := fields[1]
	videoPort, _ := strconv.Atoi(fields[2])

	// Stream a clip to the port SHELL told us about (cost-model decode).
	clip := mpeg.ClipSpec{
		Name: "ShellDemo", Frames: 30, W: 160, H: 112, FPS: 30, GOP: 6,
		AvgPBits: 20000, Jitter: 0.2,
		Scene: mpeg.SceneConfig{W: 160, H: 112, Detail: 0.4, Motion: 1, Objects: 1, Seed: 3},
	}
	src, err := host.NewSource(h, host.SourceConfig{Clip: clip, SrcPort: 7000, CostOnly: true, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	src.Start(k.Cfg.Addr, uint16(videoPort))
	eng.RunFor(3 * time.Second)

	send("stat " + pid)

	// Inspect the created path before tearing it down.
	for _, p := range k.Shell.Paths() {
		sink := k.Display.Sink(p, "DISPLAY")
		fmt.Printf("path #%d: displayed %d frames, missed %d, CPU %v\n",
			p.PID, sink.Displayed(), sink.Missed(), p.CPUTime())
	}
	send("stop " + pid)
	fmt.Printf("paths remaining: %d\n", len(k.Shell.Paths()))
}
